//! The cover sequence model (Section 3.3.3) and the vector set model
//! built on it (Section 4).
//!
//! An object `O` is approximated by a sequence
//! `S_k = (((C₀ σ₁ C₁) σ₂ C₂) … σ_k C_k)` of axis-parallel cuboid covers
//! combined with union (`+`) or difference (`−`), chosen greedily to
//! minimize the symmetric volume difference `Err = |O XOR S|`
//! (Jagadish & Bruckstein's polynomial-time algorithm — the one the
//! paper's experiments use).
//!
//! ## Search strategy
//!
//! Each greedy step maximizes the error reduction ("gain") over *all*
//! axis-parallel cuboids:
//!
//! * `gain₊(C) = |C ∩ (O∖S)| − |C ∖ (O ∪ S)|`
//! * `gain₋(C) = |C ∩ (S∖O)| − |C ∩ (S ∩ O)|`
//!
//! Both are additive over z-slabs of `C`, so for every `(x₀,x₁,y₀,y₁)`
//! footprint the optimal z-interval is a maximum-sum subarray found by
//! Kadane's algorithm in `O(r)`, with per-slab counts answered from 2-D
//! prefix sums in `O(1)`. The full step is `O(r⁴ · r) = O(r⁵)` instead of
//! the naive `O(r⁶)` box enumeration with per-box counting.

use vsim_setdist::VectorSet;
use vsim_voxel::VoxelGrid;

/// An axis-parallel cuboid in voxel coordinates, half-open:
/// `[min, max)` per axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cuboid {
    pub min: [usize; 3],
    pub max: [usize; 3],
}

impl Cuboid {
    pub fn volume(&self) -> usize {
        (0..3).map(|d| self.max[d] - self.min[d]).product()
    }

    pub fn extent(&self, d: usize) -> usize {
        self.max[d] - self.min[d]
    }

    /// Center in (fractional) voxel coordinates.
    pub fn center(&self, d: usize) -> f64 {
        (self.min[d] + self.max[d]) as f64 / 2.0
    }

    pub fn contains(&self, v: [usize; 3]) -> bool {
        (0..3).all(|d| v[d] >= self.min[d] && v[d] < self.max[d])
    }
}

/// Whether a cover is added to or subtracted from the approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    Plus,
    Minus,
}

/// One unit `(Cᵢ, σᵢ)` of a cover sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverUnit {
    pub cuboid: Cuboid,
    pub sign: Sign,
    /// Error reduction achieved by this unit.
    pub gain: usize,
}

/// A greedy cover sequence for one object.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverSequence {
    /// Raster resolution of the source grid.
    pub r: usize,
    pub units: Vec<CoverUnit>,
    /// `errors[0]` is the initial error `|O|` (empty approximation);
    /// `errors[i]` is the symmetric volume difference after unit `i`.
    pub errors: Vec<usize>,
}

impl CoverSequence {
    /// Final symmetric volume difference `Err_k`.
    pub fn final_error(&self) -> usize {
        *self.errors.last().unwrap()
    }

    /// Rebuild the approximation grid `S_k` by applying all units.
    pub fn reconstruct(&self) -> VoxelGrid {
        let mut s = VoxelGrid::cubic(self.r);
        for u in &self.units {
            for z in u.cuboid.min[2]..u.cuboid.max[2] {
                for y in u.cuboid.min[1]..u.cuboid.max[1] {
                    for x in u.cuboid.min[0]..u.cuboid.max[0] {
                        s.set(x, y, z, matches!(u.sign, Sign::Plus));
                    }
                }
            }
        }
        s
    }
}

/// Per-z-slab 2-D prefix sums over a set of "marked" voxels, used to
/// answer `count(rect, z-slab)` in O(1).
struct SlabPrefix {
    r: usize,
    /// `[z][(y)(r+1) + x]`, standard inclusive-exclusive 2-D table.
    tables: Vec<Vec<u32>>,
}

impl SlabPrefix {
    /// Build from a predicate over voxel coordinates.
    fn build(r: usize, mut f: impl FnMut(usize, usize, usize) -> bool) -> Self {
        let w = r + 1;
        let mut tables = Vec::with_capacity(r);
        for z in 0..r {
            let mut t = vec![0u32; w * w];
            for y in 1..=r {
                let mut row = 0u32;
                for x in 1..=r {
                    row += f(x - 1, y - 1, z) as u32;
                    t[y * w + x] = row + t[(y - 1) * w + x];
                }
            }
            tables.push(t);
        }
        SlabPrefix { r, tables }
    }

    /// Count of marked voxels in `[x0,x1) × [y0,y1)` at height `z`.
    #[inline]
    fn rect(&self, z: usize, x0: usize, x1: usize, y0: usize, y1: usize) -> u32 {
        let w = self.r + 1;
        let t = &self.tables[z];
        t[y1 * w + x1] + t[y0 * w + x0] - t[y0 * w + x1] - t[y1 * w + x0]
    }
}

/// One greedy step: the best `(cuboid, sign, gain)` over all cuboids, or
/// `None` if no cuboid has positive gain.
fn best_cover(object: &VoxelGrid, approx: &VoxelGrid) -> Option<CoverUnit> {
    let [r, _, _] = object.dims();
    // Gain tables:
    //   plus : a(z-slab) = |slab ∩ O∖S| − (slab_area − |slab ∩ (O∪S)|)
    //   minus: b(z-slab) = |slab ∩ S∖O| − |slab ∩ (S∩O)|
    let need_add = SlabPrefix::build(r, |x, y, z| object.get(x, y, z) && !approx.get(x, y, z));
    let in_either = SlabPrefix::build(r, |x, y, z| object.get(x, y, z) || approx.get(x, y, z));
    let need_del = SlabPrefix::build(r, |x, y, z| !object.get(x, y, z) && approx.get(x, y, z));
    let in_both = SlabPrefix::build(r, |x, y, z| object.get(x, y, z) && approx.get(x, y, z));

    let mut best_gain = 0i64;
    let mut best: Option<(Cuboid, Sign)> = None;

    let mut a = vec![0i64; r];
    let mut b = vec![0i64; r];
    for x0 in 0..r {
        for x1 in (x0 + 1)..=r {
            for y0 in 0..r {
                for y1 in (y0 + 1)..=r {
                    let area = ((x1 - x0) * (y1 - y0)) as i64;
                    for z in 0..r {
                        let add = need_add.rect(z, x0, x1, y0, y1) as i64;
                        let either = in_either.rect(z, x0, x1, y0, y1) as i64;
                        a[z] = add - (area - either);
                        let del = need_del.rect(z, x0, x1, y0, y1) as i64;
                        let both = in_both.rect(z, x0, x1, y0, y1) as i64;
                        b[z] = del - both;
                    }
                    // Kadane over z for both signs simultaneously.
                    let mut run_a = 0i64;
                    let mut start_a = 0usize;
                    let mut run_b = 0i64;
                    let mut start_b = 0usize;
                    for z in 0..r {
                        if run_a <= 0 {
                            run_a = 0;
                            start_a = z;
                        }
                        run_a += a[z];
                        if run_a > best_gain {
                            best_gain = run_a;
                            best = Some((
                                Cuboid { min: [x0, y0, start_a], max: [x1, y1, z + 1] },
                                Sign::Plus,
                            ));
                        }
                        if run_b <= 0 {
                            run_b = 0;
                            start_b = z;
                        }
                        run_b += b[z];
                        if run_b > best_gain {
                            best_gain = run_b;
                            best = Some((
                                Cuboid { min: [x0, y0, start_b], max: [x1, y1, z + 1] },
                                Sign::Minus,
                            ));
                        }
                    }
                }
            }
        }
    }

    best.map(|(cuboid, sign)| CoverUnit { cuboid, sign, gain: best_gain as usize })
}

/// Greedy cover sequence of at most `k` units (Jagadish/Bruckstein's
/// polynomial algorithm). Stops early when no cuboid reduces the error —
/// the paper exploits exactly this in the vector set model ("if the
/// approximation is optimal with less than the maximum number of covers,
/// only this smaller number of vectors has to be stored").
pub fn greedy_cover_sequence(object: &VoxelGrid, k: usize) -> CoverSequence {
    let [rx, ry, rz] = object.dims();
    assert!(rx == ry && ry == rz, "cover sequences require a cubic grid");
    let r = rx;
    let mut approx = VoxelGrid::cubic(r);
    let mut err = object.count();
    let mut seq = CoverSequence { r, units: Vec::new(), errors: vec![err] };
    for _ in 0..k {
        let Some(unit) = best_cover(object, &approx) else {
            break;
        };
        // Apply to the approximation.
        let val = matches!(unit.sign, Sign::Plus);
        for z in unit.cuboid.min[2]..unit.cuboid.max[2] {
            for y in unit.cuboid.min[1]..unit.cuboid.max[1] {
                for x in unit.cuboid.min[0]..unit.cuboid.max[0] {
                    approx.set(x, y, z, val);
                }
            }
        }
        err -= unit.gain;
        seq.units.push(unit);
        seq.errors.push(err);
        if err == 0 {
            break;
        }
    }
    debug_assert_eq!(err, object.xor_count(&seq.reconstruct()));
    seq
}

/// The 6 feature values of one cover (Section 3.3.3): position (cuboid
/// center, *relative to the raster center*) and extension per axis,
/// normalized by the raster resolution. Positions live in `[-0.5, 0.5]`,
/// extents in `(0, 1]`. The centered frame makes `ω = 0` the natural
/// neutral element of Section 4.3 — a cover at the data-space center
/// with no volume, which indeed "has the shortest average distance
/// within the position and has no volume".
fn cover_features(c: &Cuboid, r: usize) -> [f64; 6] {
    let rf = r as f64;
    [
        (c.center(0) - rf / 2.0) / rf,
        (c.center(1) - rf / 2.0) / rf,
        (c.center(2) - rf / 2.0) / rf,
        c.extent(0) as f64 / rf,
        c.extent(1) as f64 / rf,
        c.extent(2) as f64 / rf,
    ]
}

/// The one-vector cover sequence model: a `6k`-dimensional feature
/// vector; missing covers are padded with dummy covers `C₀` ("an initial
/// empty cover at the zero point"), i.e. six zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverSequenceModel {
    /// Number of covers `k`; the feature vector has `6k` dimensions.
    pub k: usize,
}

impl CoverSequenceModel {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        CoverSequenceModel { k }
    }

    pub fn dims(&self) -> usize {
        6 * self.k
    }

    pub fn extract(&self, grid: &VoxelGrid) -> Vec<f64> {
        let seq = greedy_cover_sequence(grid, self.k);
        self.from_sequence(&seq)
    }

    /// Flatten an existing sequence (so the expensive greedy search can
    /// be shared between models).
    pub fn from_sequence(&self, seq: &CoverSequence) -> Vec<f64> {
        let mut f = vec![0.0; self.dims()];
        for (i, u) in seq.units.iter().take(self.k).enumerate() {
            f[6 * i..6 * i + 6].copy_from_slice(&cover_features(&u.cuboid, seq.r));
        }
        f
    }
}

/// The paper's *vector set model*: the same covers represented as a set
/// of 6-dimensional feature vectors with cardinality ≤ `k` — no dummy
/// covers needed (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorSetModel {
    /// Maximum set cardinality `k`.
    pub k: usize,
}

impl VectorSetModel {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        VectorSetModel { k }
    }

    pub fn extract(&self, grid: &VoxelGrid) -> VectorSet {
        let seq = greedy_cover_sequence(grid, self.k);
        self.from_sequence(&seq)
    }

    pub fn from_sequence(&self, seq: &CoverSequence) -> VectorSet {
        let mut s = VectorSet::with_capacity(6, seq.units.len().min(self.k));
        for u in seq.units.iter().take(self.k) {
            s.push(&cover_features(&u.cuboid, seq.r));
        }
        s
    }
}

/// Apply one of the 48 cube symmetries to a cover feature vector
/// `[px, py, pz, ex, ey, ez]` (normalized, raster-center-relative
/// coordinates): the position is rotated about the origin and the
/// extents are permuted (and kept positive). Implements the transform
/// set `T` of Definition 2 directly in feature space, avoiding
/// re-voxelization.
pub fn transform_cover_vector(v: &[f64], m: &vsim_geom::Mat3) -> [f64; 6] {
    use vsim_geom::Vec3;
    // Positions are already raster-center-relative, so the rotation
    // applies directly; extents are permuted and kept positive.
    let p = Vec3::new(v[0], v[1], v[2]);
    let e = Vec3::new(v[3], v[4], v[5]);
    let rp = *m * p;
    let re = (*m * e).abs();
    [rp.x, rp.y, rp.z, re.x, re.y, re.z]
}

/// Transform a whole vector set (see [`transform_cover_vector`]).
pub fn transform_vector_set(s: &VectorSet, m: &vsim_geom::Mat3) -> VectorSet {
    assert_eq!(s.dim(), 6);
    let mut out = VectorSet::with_capacity(6, s.len());
    for v in s.iter() {
        out.push(&transform_cover_vector(v, m));
    }
    out
}

/// Transform a `6k`-dimensional one-vector representation cover by cover.
/// Dummy covers (all six values zero) stay dummies.
pub fn transform_feature_vector(f: &[f64], m: &vsim_geom::Mat3) -> Vec<f64> {
    assert_eq!(f.len() % 6, 0);
    let mut out = Vec::with_capacity(f.len());
    for c in f.chunks_exact(6) {
        if c.iter().all(|&x| x == 0.0) {
            out.extend_from_slice(c);
        } else {
            out.extend_from_slice(&transform_cover_vector(c, m));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(r: usize, min: [usize; 3], max: [usize; 3]) -> VoxelGrid {
        let mut g = VoxelGrid::cubic(r);
        for z in min[2]..max[2] {
            for y in min[1]..max[1] {
                for x in min[0]..max[0] {
                    g.set(x, y, z, true);
                }
            }
        }
        g
    }

    /// Brute-force best cover: enumerate every cuboid and sign.
    fn brute_best_gain(object: &VoxelGrid, approx: &VoxelGrid) -> i64 {
        let [r, _, _] = object.dims();
        let count_in = |c: &Cuboid, pred: &dyn Fn(usize, usize, usize) -> bool| -> i64 {
            let mut n = 0;
            for z in c.min[2]..c.max[2] {
                for y in c.min[1]..c.max[1] {
                    for x in c.min[0]..c.max[0] {
                        n += pred(x, y, z) as i64;
                    }
                }
            }
            n
        };
        let mut best = 0i64;
        for x0 in 0..r {
            for x1 in (x0 + 1)..=r {
                for y0 in 0..r {
                    for y1 in (y0 + 1)..=r {
                        for z0 in 0..r {
                            for z1 in (z0 + 1)..=r {
                                let c = Cuboid { min: [x0, y0, z0], max: [x1, y1, z1] };
                                let add = count_in(&c, &|x, y, z| {
                                    object.get(x, y, z) && !approx.get(x, y, z)
                                });
                                let bad = count_in(&c, &|x, y, z| {
                                    !object.get(x, y, z) && !approx.get(x, y, z)
                                });
                                best = best.max(add - bad);
                                let del = count_in(&c, &|x, y, z| {
                                    !object.get(x, y, z) && approx.get(x, y, z)
                                });
                                let keep = count_in(&c, &|x, y, z| {
                                    object.get(x, y, z) && approx.get(x, y, z)
                                });
                                best = best.max(del - keep);
                            }
                        }
                    }
                }
            }
        }
        best
    }

    #[test]
    fn greedy_step_matches_brute_force_on_random_grids() {
        // Pseudo-random object and partial approximation on a 5-cube:
        // the prefix-sum + Kadane search must find the same best gain as
        // full enumeration over all cuboids and both signs.
        let mut state = 0xabcdef12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for trial in 0..10 {
            let mut object = VoxelGrid::cubic(5);
            let mut approx = VoxelGrid::cubic(5);
            for z in 0..5 {
                for y in 0..5 {
                    for x in 0..5 {
                        if next() % 3 == 0 {
                            object.set(x, y, z, true);
                        }
                        if next() % 4 == 0 {
                            approx.set(x, y, z, true);
                        }
                    }
                }
            }
            let want = brute_best_gain(&object, &approx);
            let got = super::best_cover(&object, &approx).map_or(0, |u| u.gain as i64);
            assert_eq!(got, want, "trial {trial}");
        }
    }

    #[test]
    fn single_box_is_covered_exactly_in_one_step() {
        let g = block(10, [2, 3, 4], [7, 8, 9]);
        let seq = greedy_cover_sequence(&g, 5);
        assert_eq!(seq.units.len(), 1);
        assert_eq!(seq.final_error(), 0);
        let u = &seq.units[0];
        assert_eq!(u.cuboid, Cuboid { min: [2, 3, 4], max: [7, 8, 9] });
        assert_eq!(u.sign, Sign::Plus);
        assert_eq!(seq.reconstruct(), g);
    }

    #[test]
    fn two_disjoint_boxes_need_two_covers() {
        let mut g = block(12, [0, 0, 0], [4, 4, 4]);
        let g2 = block(12, [7, 7, 7], [12, 12, 12]);
        g.union_with(&g2);
        let seq = greedy_cover_sequence(&g, 5);
        assert_eq!(seq.units.len(), 2);
        assert_eq!(seq.final_error(), 0);
        // Greedy picks the larger box first (5^3 = 125 > 64).
        assert_eq!(seq.units[0].cuboid.volume(), 125);
        assert_eq!(seq.units[1].cuboid.volume(), 64);
    }

    #[test]
    fn minus_cover_carves_a_hole() {
        // A box with a rectangular hole: optimal is big plus, small minus.
        let mut g = block(12, [1, 1, 1], [11, 11, 11]);
        let hole = block(12, [4, 4, 4], [8, 8, 8]);
        g.subtract(&hole);
        let seq = greedy_cover_sequence(&g, 4);
        assert_eq!(seq.final_error(), 0);
        assert_eq!(seq.units.len(), 2);
        assert_eq!(seq.units[0].sign, Sign::Plus);
        assert_eq!(seq.units[1].sign, Sign::Minus);
        assert_eq!(seq.units[1].cuboid, Cuboid { min: [4, 4, 4], max: [8, 8, 8] });
    }

    #[test]
    fn errors_are_monotone_nonincreasing_and_consistent() {
        // An L-shaped object.
        let mut g = block(10, [0, 0, 0], [10, 3, 10]);
        g.union_with(&block(10, [0, 0, 0], [3, 10, 10]));
        let seq = greedy_cover_sequence(&g, 6);
        for w in seq.errors.windows(2) {
            assert!(w[1] < w[0], "greedy gains must be strictly positive");
        }
        assert_eq!(seq.final_error(), g.xor_count(&seq.reconstruct()));
        assert_eq!(seq.errors[0], g.count());
    }

    #[test]
    fn empty_object_yields_empty_sequence() {
        let g = VoxelGrid::cubic(8);
        let seq = greedy_cover_sequence(&g, 3);
        assert!(seq.units.is_empty());
        assert_eq!(seq.final_error(), 0);
    }

    #[test]
    fn k_limits_sequence_length() {
        // Checkerboard-ish object needing many covers.
        let mut g = VoxelGrid::cubic(8);
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    if (x / 2 + y / 2 + z / 2) % 2 == 0 {
                        g.set(x, y, z, true);
                    }
                }
            }
        }
        let seq = greedy_cover_sequence(&g, 3);
        assert_eq!(seq.units.len(), 3);
        assert!(seq.final_error() > 0);
    }

    #[test]
    fn feature_vector_layout_and_dummies() {
        let g = block(10, [2, 2, 2], [8, 8, 8]);
        let model = CoverSequenceModel::new(4);
        let f = model.extract(&g);
        assert_eq!(f.len(), 24);
        // First cover: center (5,5,5) = raster center -> position 0,
        // extent (6,6,6)/10.
        assert_eq!(&f[0..6], &[0.0, 0.0, 0.0, 0.6, 0.6, 0.6]);
        // Remaining covers are dummies (zeros).
        assert!(f[6..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vector_set_has_no_dummies() {
        let g = block(10, [2, 2, 2], [8, 8, 8]);
        let s = VectorSetModel::new(7).extract(&g);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dim(), 6);
        assert_eq!(s.get(0), &[0.0, 0.0, 0.0, 0.6, 0.6, 0.6]);
    }

    #[test]
    fn vector_set_and_feature_vector_share_the_same_covers() {
        let mut g = block(12, [0, 0, 0], [5, 5, 5]);
        g.union_with(&block(12, [6, 6, 6], [12, 12, 12]));
        let seq = greedy_cover_sequence(&g, 5);
        let fv = CoverSequenceModel::new(5).from_sequence(&seq);
        let vs = VectorSetModel::new(5).from_sequence(&seq);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(&fv[6 * i..6 * i + 6], v);
        }
    }

    #[test]
    fn transforming_features_matches_transforming_the_grid() {
        // Rotating the voxel grid and re-extracting must equal
        // transforming the extracted features directly (up to set order).
        use vsim_geom::Mat3;
        use vsim_voxel::rotate_grid;
        let mut g = block(12, [1, 2, 3], [5, 9, 6]);
        g.union_with(&block(12, [6, 1, 7], [11, 4, 12]));
        let model = VectorSetModel::new(4);
        let vs = model.extract(&g);
        for m in Mat3::cube_symmetries().iter().step_by(7) {
            let rotated = rotate_grid(&g, m);
            let vs_rot = model.extract(&rotated);
            let vs_trans = transform_vector_set(&vs, m);
            // Compare as sorted multisets of rows.
            let norm = |s: &VectorSet| {
                let mut rows: Vec<Vec<i64>> = s
                    .iter()
                    .map(|r| r.iter().map(|x| (x * 1e6).round() as i64).collect())
                    .collect();
                rows.sort();
                rows
            };
            assert_eq!(norm(&vs_rot), norm(&vs_trans), "symmetry {m:?}");
        }
    }

    #[test]
    fn feature_vector_transform_preserves_dummies() {
        use vsim_geom::Mat3;
        let f = vec![0.1, 0.2, -0.1, 0.2, 0.4, 0.6, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let t = transform_feature_vector(&f, &Mat3::rot_z(std::f64::consts::FRAC_PI_2));
        assert_eq!(&t[6..], &f[6..]);
        // Extents permuted: x <-> y.
        assert!((t[3] - 0.4).abs() < 1e-9);
        assert!((t[4] - 0.2).abs() < 1e-9);
        assert!((t[5] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn greedy_error_decreases_with_more_covers() {
        // A staircase object: more covers, better approximation.
        let mut g = VoxelGrid::cubic(12);
        for step in 0..4 {
            for z in 0..(3 * (step + 1)) {
                for y in 0..12 {
                    for x in (3 * step)..(3 * step + 3) {
                        g.set(x, y, z, true);
                    }
                }
            }
        }
        let e3 = greedy_cover_sequence(&g, 3).final_error();
        let e5 = greedy_cover_sequence(&g, 5).final_error();
        let e7 = greedy_cover_sequence(&g, 7).final_error();
        assert!(e3 >= e5 && e5 >= e7);
        assert_eq!(e7, 0); // 4 slabs are enough... with <=7 certainly
    }
}
