//! Property tests for the LRU buffer pool: random access/pin workloads
//! must never violate the pool's structural invariants.

use proptest::prelude::*;
use vsim_store::{BufferPool, InMemoryPageStore, IoTracker, PageStore};

proptest! {
    /// A bounded pool never holds more resident pages than its capacity,
    /// no matter the access pattern.
    #[test]
    fn capacity_is_never_exceeded(
        cap in 0.0f64..1.0,
        ops in proptest::collection::vec(0.0f64..1.0, 200),
    ) {
        let cap = 1 + (cap * 15.0) as usize;
        let pool = BufferPool::new(cap);
        let store = InMemoryPageStore::new();
        let tracker = IoTracker::default();
        for op in &ops {
            let page = (op * 64.0) as u64;
            pool.access(store.id(), page, 1, &tracker);
            prop_assert!(pool.resident() <= cap, "resident {} > cap {}", pool.resident(), cap);
        }
    }

    /// Every access is classified as exactly one hit or miss:
    /// hits + misses == total accesses (tracker and pool agree).
    #[test]
    fn hits_plus_misses_equals_accesses(
        ops in proptest::collection::vec(0.0f64..1.0, 150),
    ) {
        let pool = BufferPool::new(8);
        let store = InMemoryPageStore::new();
        let tracker = IoTracker::default();
        let mut accesses = 0u64;
        for op in &ops {
            let page = (op * 32.0) as u64;
            let span = 1 + (page % 3); // multi-page spans too
            pool.access(store.id(), page, span, &tracker);
            accesses += span;
        }
        let snap = tracker.snapshot();
        prop_assert_eq!(snap.cache.hits + snap.cache.misses, accesses);
        let pstats = pool.stats();
        prop_assert_eq!(pstats.counts.hits + pstats.counts.misses, accesses);
    }

    /// Pinned pages survive arbitrary eviction pressure; unpinning makes
    /// them evictable again.
    #[test]
    fn pinned_pages_are_never_evicted(
        pinned_page in 0.0f64..1.0,
        ops in proptest::collection::vec(0.0f64..1.0, 120),
    ) {
        let pool = BufferPool::new(4);
        let store = InMemoryPageStore::new();
        let other = InMemoryPageStore::new();
        let tracker = IoTracker::default();
        let pinned_page = (pinned_page * 16.0) as u64;
        let guard = pool.pin(store.id(), pinned_page, &tracker);
        for op in &ops {
            // Stream over a working set much larger than the pool.
            let page = 100 + (op * 64.0) as u64;
            pool.access(store.id(), page, 1, &tracker);
            prop_assert!(
                pool.contains(store.id(), pinned_page),
                "pinned page {} was evicted", pinned_page
            );
        }
        drop(guard);
        // With the pin released the page must be evictable: flood again.
        for extra in 0..16u64 {
            pool.access(other.id(), 1000 + extra, 1, &tracker);
        }
        prop_assert!(!pool.contains(store.id(), pinned_page));
        prop_assert!(pool.resident() <= 4);
    }

    /// Counter balance: every resident page entered via a miss and left
    /// via an eviction, so misses - evictions == resident.
    #[test]
    fn eviction_accounting_balances(
        ops in proptest::collection::vec(0.0f64..1.0, 100),
    ) {
        let pool = BufferPool::new(6);
        let store = InMemoryPageStore::new();
        let tracker = IoTracker::default();
        for op in &ops {
            pool.access(store.id(), (op * 40.0) as u64, 1, &tracker);
        }
        let s = pool.stats();
        prop_assert_eq!(s.counts.misses - s.counts.evictions, pool.resident() as u64);
    }
}
