//! Property tests for the durable page file: arbitrary workloads
//! round-trip bit-identically across a close/reopen (pread and mmap),
//! freed pages are genuinely reused, and corruption or truncation of
//! the metadata region is always detected at open — never silently
//! accepted, never UB.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use vsim_store::{FilePageStore, PageStore, PageStreamReader, PageStreamWriter, PAGE_SIZE};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Unique path per proptest case; the wrapper removes it on drop so
/// repeated cases never observe each other's files.
fn temp_file(tag: &str) -> TempFile {
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    TempFile(std::env::temp_dir().join(format!("vsim_prop_{tag}_{}_{n}.vspf", std::process::id())))
}

struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Deterministic page image for span `s`, page `p` — cheap to recompute
/// on the read side for bit-exact comparison.
fn page_image(s: usize, p: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (s.wrapping_mul(31) + p as usize * 7 + i) as u8).collect()
}

/// `(pages, byte_len)` span shapes: 1–3 pages, 1..=PAGE_SIZE bytes
/// written to each.
fn span_shape() -> impl Strategy<Value = (u64, usize)> {
    (0u64..3 * PAGE_SIZE as u64).prop_map(|x| (1 + x % 3, 1 + (x / 3) as usize % PAGE_SIZE))
}

/// Metadata bytes of a fresh single-map-page file: header page 0 plus
/// one free-map page.
const META_BYTES: usize = 2 * PAGE_SIZE;

proptest! {
    #[test]
    fn any_workload_round_trips_bit_identically_after_reopen(
        spans in proptest::collection::vec(span_shape(), 1..12),
        root in 0u64..16,
    ) {
        let path = temp_file("round_trip");
        let mut placed = Vec::new();
        {
            let store = FilePageStore::create(&path.0, 256).unwrap();
            for (s, &(pages, len)) in spans.iter().enumerate() {
                let first = store.allocate(pages);
                for p in 0..pages {
                    store.write_page(first + p, &page_image(s, p, len)).unwrap();
                }
                placed.push((first, pages, len));
            }
            store.set_root(root);
            store.sync().unwrap();
        }
        for open in [FilePageStore::open, FilePageStore::open_mmap] {
            let store = open(&path.0).unwrap();
            prop_assert_eq!(store.root(), Some(root));
            prop_assert_eq!(store.allocated_pages(), spans.iter().map(|&(p, _)| p).sum::<u64>());
            let mut buf = vec![0u8; PAGE_SIZE];
            for (s, &(first, pages, len)) in placed.iter().enumerate() {
                for p in 0..pages {
                    store.read_into(first + p, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..len], &page_image(s, p, len)[..]);
                    prop_assert!(
                        buf[len..].iter().all(|&b| b == 0),
                        "unwritten page tail must read as zeros"
                    );
                }
            }
        }
    }

    #[test]
    fn freed_pages_are_reused_without_growing_the_file(
        span in 1u64..4,
        count in 2usize..10,
        freed in proptest::collection::vec(proptest::bool::ANY, 10),
    ) {
        let path = temp_file("reuse");
        let store = FilePageStore::create(&path.0, 256).unwrap();
        let spans: Vec<u64> = (0..count).map(|_| store.allocate(span)).collect();
        let high_water = store.page_count();
        let mut released = 0;
        for (i, &first) in spans.iter().enumerate() {
            if freed[i] {
                store.free(first, span);
                released += 1;
            }
        }
        prop_assert_eq!(store.allocated_pages(), (count - released) as u64 * span);
        // Same-size reallocation fits exactly into the holes: the
        // high-water mark (and hence the file) must not move.
        for _ in 0..released {
            let first = store.allocate(span);
            prop_assert!(first + span <= high_water, "freed space was not reused");
        }
        prop_assert_eq!(store.page_count(), high_water);
        prop_assert_eq!(store.allocated_pages(), count as u64 * span);
    }

    #[test]
    fn flipping_any_checksummed_metadata_byte_is_detected(
        in_header in proptest::bool::ANY,
        offset in 0usize..PAGE_SIZE,
        mask in 1u8..=255,
    ) {
        let path = temp_file("corrupt");
        {
            let store = FilePageStore::create(&path.0, 64).unwrap();
            store.allocate(3);
            store.set_root(1);
            store.sync().unwrap();
        }
        // The checksum covers the 40-byte header prefix (including the
        // checksum field itself at 32..40) and the whole free map.
        let target = if in_header { offset % 40 } else { PAGE_SIZE + offset };
        let mut bytes = std::fs::read(&path.0).unwrap();
        bytes[target] ^= mask;
        std::fs::write(&path.0, &bytes).unwrap();
        for open in [FilePageStore::open, FilePageStore::open_mmap] {
            let err = open(&path.0).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn truncation_inside_the_metadata_region_is_detected(cut in 0usize..META_BYTES) {
        let path = temp_file("meta_trunc");
        {
            let store = FilePageStore::create(&path.0, 64).unwrap();
            store.allocate(2);
            store.sync().unwrap();
        }
        let bytes = std::fs::read(&path.0).unwrap();
        std::fs::write(&path.0, &bytes[..cut]).unwrap();
        let err = FilePageStore::open(&path.0).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn stream_payloads_survive_reopen_and_detect_a_torn_tail(
        payload in proptest::collection::vec(1u8..=255, 64..2 * PAGE_SIZE),
        cut_frac in 0.0f64..0.95,
    ) {
        let path = temp_file("stream");
        {
            let store = FilePageStore::create(&path.0, 64).unwrap();
            let mut w = PageStreamWriter::new(&store);
            w.write_all(&payload).unwrap();
            let h = w.finish().unwrap();
            store.set_root(h.first);
            store.sync().unwrap();
        }
        // Intact file: the payload reads back bit-identically.
        {
            let store = FilePageStore::open(&path.0).unwrap();
            let mut r = PageStreamReader::open(&store, store.root().unwrap()).unwrap();
            let mut got = Vec::new();
            r.read_to_end(&mut got).unwrap();
            prop_assert_eq!(&got, &payload);
        }
        // Torn data tail: bytes past the cut read as zeros; the stream's
        // checksum/framing must turn that into an error, not wrong bytes.
        // Cut strictly inside the stream's meaningful extent (full pages
        // carry STREAM_PAYLOAD payload bytes each behind a 20-byte
        // header; the final partial page only its written prefix), so —
        // payload bytes being nonzero — at least one real byte is lost.
        const STREAM_PAYLOAD: usize = PAGE_SIZE - 20;
        let (full, rem) = (payload.len() / STREAM_PAYLOAD, payload.len() % STREAM_PAYLOAD);
        let extent = full * PAGE_SIZE + if rem > 0 { 20 + rem } else { 0 };
        let bytes = std::fs::read(&path.0).unwrap();
        let keep = META_BYTES + (extent as f64 * cut_frac) as usize;
        std::fs::write(&path.0, &bytes[..keep]).unwrap();
        let store = FilePageStore::open(&path.0).unwrap();
        let mut got = Vec::new();
        let outcome = PageStreamReader::open(&store, store.root().unwrap())
            .and_then(|mut r| r.read_to_end(&mut got));
        prop_assert!(outcome.is_err(), "torn stream tail must be an error");
    }
}
