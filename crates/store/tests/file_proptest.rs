//! Property tests for the durable page file: arbitrary workloads
//! round-trip bit-identically across a close/reopen (pread and mmap),
//! freed pages are genuinely reused, and corruption or truncation of
//! the metadata region is always detected at open — never silently
//! accepted, never UB.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use vsim_store::{
    Fault, FaultInjectingPageStore, FaultPlan, FilePageStore, InMemoryPageStore, PageStore,
    PageStreamReader, PageStreamWriter, PAGE_SIZE,
};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Unique path per proptest case; the wrapper removes it on drop so
/// repeated cases never observe each other's files.
fn temp_file(tag: &str) -> TempFile {
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    TempFile(std::env::temp_dir().join(format!("vsim_prop_{tag}_{}_{n}.vspf", std::process::id())))
}

struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Deterministic page image for span `s`, page `p` — cheap to recompute
/// on the read side for bit-exact comparison.
fn page_image(s: usize, p: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (s.wrapping_mul(31) + p as usize * 7 + i) as u8).collect()
}

/// `(pages, byte_len)` span shapes: 1–3 pages, 1..=PAGE_SIZE bytes
/// written to each.
fn span_shape() -> impl Strategy<Value = (u64, usize)> {
    (0u64..3 * PAGE_SIZE as u64).prop_map(|x| (1 + x % 3, 1 + (x / 3) as usize % PAGE_SIZE))
}

/// Metadata bytes of a fresh single-map-page file: two header slot
/// pages plus two free-map copies (one page each). Data starts here.
const META_BYTES: usize = 4 * PAGE_SIZE;

proptest! {
    #[test]
    fn any_workload_round_trips_bit_identically_after_reopen(
        spans in proptest::collection::vec(span_shape(), 1..12),
        root in 0u64..16,
    ) {
        let path = temp_file("round_trip");
        let mut placed = Vec::new();
        {
            let store = FilePageStore::create(&path.0, 256).unwrap();
            for (s, &(pages, len)) in spans.iter().enumerate() {
                let first = store.allocate(pages).unwrap();
                for p in 0..pages {
                    store.write_page(first + p, &page_image(s, p, len)).unwrap();
                }
                placed.push((first, pages, len));
            }
            store.set_root(root);
            store.sync().unwrap();
        }
        for open in [FilePageStore::open, FilePageStore::open_mmap] {
            let store = open(&path.0).unwrap();
            prop_assert_eq!(store.root(), Some(root));
            prop_assert_eq!(store.allocated_pages(), spans.iter().map(|&(p, _)| p).sum::<u64>());
            let mut buf = vec![0u8; PAGE_SIZE];
            for (s, &(first, pages, len)) in placed.iter().enumerate() {
                for p in 0..pages {
                    store.read_into(first + p, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..len], &page_image(s, p, len)[..]);
                    prop_assert!(
                        buf[len..].iter().all(|&b| b == 0),
                        "unwritten page tail must read as zeros"
                    );
                }
            }
        }
    }

    #[test]
    fn freed_pages_are_reused_without_growing_the_file(
        span in 1u64..4,
        count in 2usize..10,
        freed in proptest::collection::vec(proptest::bool::ANY, 10),
    ) {
        let path = temp_file("reuse");
        let store = FilePageStore::create(&path.0, 256).unwrap();
        let spans: Vec<u64> = (0..count).map(|_| store.allocate(span).unwrap()).collect();
        let high_water = store.page_count();
        let mut released = 0;
        for (i, &first) in spans.iter().enumerate() {
            if freed[i] {
                store.free(first, span).unwrap();
                released += 1;
            }
        }
        prop_assert_eq!(store.allocated_pages(), (count - released) as u64 * span);
        // Same-size reallocation fits exactly into the holes: the
        // high-water mark (and hence the file) must not move.
        for _ in 0..released {
            let first = store.allocate(span).unwrap();
            prop_assert!(first + span <= high_water, "freed space was not reused");
        }
        prop_assert_eq!(store.page_count(), high_water);
        prop_assert_eq!(store.allocated_pages(), count as u64 * span);
    }

    #[test]
    fn corrupting_the_live_slot_falls_back_and_both_slots_is_rejected(
        in_header in proptest::bool::ANY,
        offset in 0usize..PAGE_SIZE,
        mask in 1u8..=255,
    ) {
        let path = temp_file("corrupt");
        {
            // create() itself commits generation 1 (empty) into slot 1;
            // the explicit sync commits generation 2 into slot 0.
            let store = FilePageStore::create(&path.0, 64).unwrap();
            store.allocate(3).unwrap();
            store.set_root(1);
            store.sync().unwrap();
        }
        // Flip a checksummed byte of the live slot (header page 0,
        // bytes 0..48, or free-map copy A at page 2): open must adopt
        // the stale-but-valid generation 1 snapshot, never the corrupt
        // generation 2.
        let live = if in_header { offset % 48 } else { 2 * PAGE_SIZE + offset };
        let mut bytes = std::fs::read(&path.0).unwrap();
        bytes[live] ^= mask;
        std::fs::write(&path.0, &bytes).unwrap();
        {
            let store = FilePageStore::open(&path.0).unwrap();
            prop_assert_eq!(store.generation(), 1);
            prop_assert_eq!(store.root(), None);
            prop_assert_eq!(store.allocated_pages(), 0);
        }
        // Flip the same byte of the stale slot too (header page 1 or
        // free-map copy B at page 3): no adoptable slot remains.
        let stale = if in_header { PAGE_SIZE + offset % 48 } else { 3 * PAGE_SIZE + offset };
        bytes[stale] ^= mask;
        std::fs::write(&path.0, &bytes).unwrap();
        for open in [FilePageStore::open, FilePageStore::open_mmap] {
            let err = open(&path.0).unwrap_err();
            prop_assert_eq!(err.io_kind(), std::io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn truncation_destroying_both_slots_is_detected(
        cut in 0usize..PAGE_SIZE + 41,
    ) {
        let path = temp_file("meta_trunc");
        {
            let store = FilePageStore::create(&path.0, 64).unwrap();
            store.allocate(2).unwrap();
            store.sync().unwrap();
        }
        // Any cut short of slot 1's full header (byte PAGE_SIZE + 40
        // ends its checksum field) zeroes at least that checksum, and
        // always zeroes slot 0's nonempty free-map copy at page 2 — so
        // neither slot verifies. Longer cuts can leave the (empty)
        // generation-1 slot fully intact, which is legitimate fallback,
        // not silent acceptance of damage.
        let bytes = std::fs::read(&path.0).unwrap();
        std::fs::write(&path.0, &bytes[..cut]).unwrap();
        let err = FilePageStore::open(&path.0).unwrap_err();
        prop_assert_eq!(err.io_kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn stream_payloads_survive_reopen_and_detect_a_torn_tail(
        payload in proptest::collection::vec(1u8..=255, 64..2 * PAGE_SIZE),
        cut_frac in 0.0f64..0.95,
    ) {
        let path = temp_file("stream");
        {
            let store = FilePageStore::create(&path.0, 64).unwrap();
            let mut w = PageStreamWriter::new(&store);
            w.write_all(&payload).unwrap();
            let h = w.finish().unwrap();
            store.set_root(h.first);
            store.sync().unwrap();
        }
        // Intact file: the payload reads back bit-identically.
        {
            let store = FilePageStore::open(&path.0).unwrap();
            let mut r = PageStreamReader::open(&store, store.root().unwrap()).unwrap();
            let mut got = Vec::new();
            r.read_to_end(&mut got).unwrap();
            prop_assert_eq!(&got, &payload);
        }
        // Torn data tail: bytes past the cut read as zeros; the stream's
        // checksum/framing must turn that into an error, not wrong bytes.
        // Cut strictly inside the stream's meaningful extent (full pages
        // carry STREAM_PAYLOAD payload bytes each behind a 20-byte
        // header; the final partial page only its written prefix), so —
        // payload bytes being nonzero — at least one real byte is lost.
        const STREAM_PAYLOAD: usize = PAGE_SIZE - 20;
        let (full, rem) = (payload.len() / STREAM_PAYLOAD, payload.len() % STREAM_PAYLOAD);
        let extent = full * PAGE_SIZE + if rem > 0 { 20 + rem } else { 0 };
        let bytes = std::fs::read(&path.0).unwrap();
        let keep = META_BYTES + (extent as f64 * cut_frac) as usize;
        std::fs::write(&path.0, &bytes[..keep]).unwrap();
        let store = FilePageStore::open(&path.0).unwrap();
        let mut got = Vec::new();
        let outcome = PageStreamReader::open(&store, store.root().unwrap())
            .and_then(|mut r| r.read_to_end(&mut got));
        prop_assert!(outcome.is_err(), "torn stream tail must be an error");
    }

    /// An empty [`FaultPlan`] makes the wrapper a transparent
    /// pass-through: the same workload against a bare store and a
    /// wrapped one observes identical placements, identical read-back
    /// bytes, and identical page counts (memory backend).
    #[test]
    fn empty_fault_plan_is_bit_identical_to_the_bare_memory_store(
        spans in proptest::collection::vec(span_shape(), 2..10),
    ) {
        let bare = InMemoryPageStore::new();
        let wrapped = FaultInjectingPageStore::new(InMemoryPageStore::new(), FaultPlan::none());
        let a = run_workload(&bare, &spans);
        let b = run_workload(&wrapped, &spans);
        prop_assert_eq!(a, b);
    }

    /// Same pass-through property on the durable backend, strengthened
    /// to the on-disk image: after identical workloads plus a sync, the
    /// bare store's file and the wrapped store's file are bit-identical,
    /// and an mmap reopen of the wrapped file (itself re-wrapped) reads
    /// back the same observables.
    #[test]
    fn empty_fault_plan_is_bit_identical_on_file_and_mmap(
        spans in proptest::collection::vec(span_shape(), 2..8),
    ) {
        let (pa, pb) = (temp_file("ident_bare"), temp_file("ident_wrap"));
        let a = run_workload(&FilePageStore::create(&pa.0, 256).unwrap(), &spans);
        let wrapped = FaultInjectingPageStore::new(
            FilePageStore::create(&pb.0, 256).unwrap(),
            FaultPlan::none(),
        );
        let b = run_workload(&wrapped, &spans);
        drop(wrapped);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            std::fs::read(&pa.0).unwrap(),
            std::fs::read(&pb.0).unwrap(),
            "wrapped and bare stores must leave bit-identical files"
        );
        let mmap = FaultInjectingPageStore::new(
            FilePageStore::open_mmap(&pb.0).unwrap(),
            FaultPlan::none(),
        );
        prop_assert_eq!(replay_reads(&mmap, &spans, &a.0), a.1);
    }

    /// A persistent (write-side) bit flip anywhere in the checksummed
    /// extent of a stream page — the stored checksum itself or the
    /// payload — is always caught when the stream is read back; a
    /// corrupt page never decodes into wrong bytes.
    #[test]
    fn injected_write_corruption_is_always_caught_by_stream_checksums(
        seed in 0u8..=255,
        bit in 12 * 8..PAGE_SIZE * 8,
    ) {
        // One full-page payload: op 0 allocates the page, op 1 writes
        // it — the flip lands in the written image and stays on media.
        let payload: Vec<u8> =
            (0..vsim_store::STREAM_PAYLOAD).map(|i| 1 + (seed as usize + i) as u8 % 255).collect();
        let store = FaultInjectingPageStore::new(
            InMemoryPageStore::new(),
            FaultPlan::none().with_fault(1, Fault::BitFlip { bit }),
        );
        let mut w = PageStreamWriter::new(&store);
        w.write_all(&payload).unwrap();
        let h = w.finish().unwrap();
        let mut got = Vec::new();
        let outcome = PageStreamReader::open(store.inner(), h.first)
            .and_then(|mut r| r.read_to_end(&mut got));
        prop_assert!(outcome.is_err(), "flipped bit decoded as valid");
        prop_assert_eq!(outcome.unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }
}

/// Drive a fixed workload (allocate + write every span, free the first
/// span, read everything else back, sync) and collect every observable:
/// span placements, read-back images, and the final page count.
fn run_workload(store: &dyn PageStore, spans: &[(u64, usize)]) -> (Vec<u64>, Vec<u8>, u64) {
    let mut firsts = Vec::new();
    for (s, &(pages, len)) in spans.iter().enumerate() {
        let first = store.allocate(pages).unwrap();
        for p in 0..pages {
            store.write_page(first + p, &page_image(s, p, len)).unwrap();
        }
        firsts.push(first);
    }
    store.free(firsts[0], spans[0].0).unwrap();
    store.sync().unwrap();
    let readback = replay_reads(store, spans, &firsts);
    (firsts, readback, store.page_count())
}

/// Re-read the surviving spans of [`run_workload`]'s layout (the first
/// span was freed) and concatenate the raw page images.
fn replay_reads(store: &dyn PageStore, spans: &[(u64, usize)], firsts: &[u64]) -> Vec<u8> {
    let mut readback = Vec::new();
    let mut buf = vec![0u8; PAGE_SIZE];
    for (&first, &(pages, _)) in firsts.iter().zip(spans).skip(1) {
        for p in 0..pages {
            store.read_into(first + p, &mut buf).unwrap();
            readback.extend_from_slice(&buf);
        }
    }
    readback
}
