//! Durable page file: the real-I/O counterpart of
//! [`InMemoryPageStore`](crate::InMemoryPageStore).
//!
//! # On-disk layout (version 2, shadow metadata)
//!
//! ```text
//! physical page 0            header slot A (magic, version, page size,
//!                            free-map size, data-page high-water,
//!                            root pointer, generation, checksum)
//! physical page 1            header slot B (same fields)
//! physical pages 2..2+F      free-map copy A: one bit per data page
//!                            (1 = allocated), F fixed at create time
//! physical pages 2+F..2+2F   free-map copy B
//! physical pages 2+2F..      data pages; logical data page p lives at
//!                            byte offset (2 + 2F + p) * PAGE_SIZE
//! ```
//!
//! Data pages are addressed logically from 0, so page numbers are
//! interchangeable with the in-memory store's and the buffer pool never
//! sees the header or free map. Allocation is first-fit over the bitmap
//! and spans are contiguous; [`PageStore::free`] clears bits so the
//! space is genuinely reused.
//!
//! # Crash atomicity
//!
//! Metadata commits alternate between the two header/free-map slots
//! under a monotonically increasing *generation* counter:
//! [`PageStore::sync`] first makes all data-page writes durable
//! (`fdatasync`), then writes free-map copy and header for slot
//! `generation % 2` — never the slot holding the last committed state —
//! and ends with `fsync`. Each header's checksum covers the header
//! fields *and* that slot's free-map copy, so a crash anywhere mid-sync
//! leaves the previous slot byte-identical and valid: [`open`] validates
//! both slots and adopts the valid one with the highest generation.
//! The committed state therefore moves atomically from one complete
//! metadata snapshot to the next, and because data is flushed *before*
//! the commit record, a committed root never points at unwritten pages.
//! A torn *data* tail (file cut mid-page) reads as zeros, which the
//! length-prefixed, checksummed record streams above this layer detect —
//! see `stream.rs`.
//!
//! [`open`]: FilePageStore::open

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::cost::PAGE_SIZE;
use crate::error::{StoreError, StoreResult};
use crate::page::{Backend, PageStore, StoreId};
use crate::stream::fnv1a;

const FILE_MAGIC: u32 = 0x5653_5046; // "VSPF"
const FILE_VERSION: u32 = 2;
const HEADER_LEN: usize = 48;
/// Physical pages before the free-map copies (the two header slots).
const HEADER_SLOTS: u64 = 2;

/// Data pages addressable per free-map page (one bit each).
const PAGES_PER_MAP_PAGE: u64 = (PAGE_SIZE * 8) as u64;

/// Upper bound on the free-map size a header may claim (64 Ki map pages
/// ⇒ 8 TiB of data); anything larger is a corrupted header, not a file
/// this store could have written.
const MAX_FREEMAP_PAGES: u64 = 1 << 16;

/// Little-endian field readers over a buffer that is always a full
/// page; offsets are compile-time constants `< HEADER_LEN <<
/// PAGE_SIZE`, so these never slice out of bounds.
fn le_u32(buf: &[u8], offset: usize) -> u32 {
    let mut v = [0u8; 4];
    v.copy_from_slice(&buf[offset..offset + 4]);
    u32::from_le_bytes(v)
}

fn le_u64(buf: &[u8], offset: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&buf[offset..offset + 8]);
    u64::from_le_bytes(v)
}

#[derive(Debug)]
struct FreeState {
    /// One bit per data page, 1 = allocated. Length is fixed at create
    /// time (`freemap_pages * PAGE_SIZE` bytes).
    bitmap: Vec<u8>,
    /// High-water mark: data pages backed by file space so far.
    data_pages: u64,
}

impl FreeState {
    fn bit(&self, page: u64) -> bool {
        self.bitmap[(page / 8) as usize] & (1 << (page % 8)) != 0
    }

    fn set_bit(&mut self, page: u64, on: bool) {
        let (byte, mask) = ((page / 8) as usize, 1u8 << (page % 8));
        if on {
            self.bitmap[byte] |= mask;
        } else {
            self.bitmap[byte] &= !mask;
        }
    }

    /// First-fit search for a contiguous run of `pages` free bits.
    fn find_run(&self, pages: u64, capacity: u64) -> Option<u64> {
        let mut run_start = 0u64;
        let mut run_len = 0u64;
        for page in 0..capacity {
            if self.bit(page) {
                run_len = 0;
                run_start = page + 1;
            } else {
                run_len += 1;
                if run_len == pages {
                    return Some(run_start);
                }
            }
        }
        None
    }

    /// Highest allocated bit + 1, i.e. the smallest consistent
    /// high-water mark for this bitmap.
    fn min_data_pages(&self) -> u64 {
        for (byte_idx, &byte) in self.bitmap.iter().enumerate().rev() {
            if byte != 0 {
                return byte_idx as u64 * 8 + (8 - byte.leading_zeros() as u64);
            }
        }
        0
    }
}

#[cfg(unix)]
mod mmap {
    use std::ffi::c_void;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// Read-only shared mapping of the front of the page file. Pages
    /// past the mapped length (the file grew after opening) fall back
    /// to `pread` in the caller.
    #[derive(Debug)]
    pub struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_SHARED over a regular file;
    // the pointer is only ever read, never handed out mutably, and the
    // region stays valid until Drop unmaps it, so concurrent reads from
    // multiple threads are safe.
    unsafe impl Send for Map {}
    // SAFETY: as above — shared read-only access to an immutable-length
    // mapping needs no synchronization.
    unsafe impl Sync for Map {}

    impl Map {
        pub fn new(file: &std::fs::File, len: usize) -> io::Result<Map> {
            if len == 0 {
                return Ok(Map { ptr: std::ptr::null_mut(), len: 0 });
            }
            // SAFETY: mmap is called with a valid open fd, a length we
            // just measured, and no fixed address; the result is checked
            // against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_SHARED, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn len(&self) -> usize {
            self.len
        }

        /// Copy `buf.len()` bytes starting at `offset`; the caller must
        /// keep `offset + buf.len() <= self.len()`.
        pub fn read(&self, offset: usize, buf: &mut [u8]) {
            assert!(offset + buf.len() <= self.len);
            // SAFETY: the assert above keeps the source range inside the
            // live mapping, and src/dst do not overlap (buf is a caller
            // buffer, never the mapping itself).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    (self.ptr as *const u8).add(offset),
                    buf.as_mut_ptr(),
                    buf.len(),
                );
            }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: ptr/len came from a successful mmap in new()
                // and are unmapped exactly once.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

/// A single-file durable page store with a free map for page reuse,
/// shadow-slot crash-atomic metadata commits, and an optional read-only
/// mmap fast path. See the module docs for the on-disk layout and
/// recovery story.
#[derive(Debug)]
pub struct FilePageStore {
    id: StoreId,
    file: File,
    freemap_pages: u64,
    state: Mutex<FreeState>,
    /// User-defined root pointer persisted in the header (e.g. the first
    /// page of a directory stream).
    root: AtomicU64,
    /// Generation of the last committed metadata snapshot.
    generation: AtomicU64,
    /// Whether allocations/frees/root changes happened since the last
    /// sync (Drop only syncs a dirty store, so generations don't churn).
    dirty: AtomicBool,
    #[cfg(unix)]
    map: Option<mmap::Map>,
}

/// One parsed-and-validated header slot.
struct Slot {
    freemap_pages: u64,
    data_pages: u64,
    root: u64,
    generation: u64,
    bitmap: Vec<u8>,
}

impl FilePageStore {
    /// Create a fresh page file able to hold at least `capacity_pages`
    /// data pages (rounded up to whole free-map pages; one free-map
    /// page covers 32768 data pages = 128 MiB). Truncates any existing
    /// file at `path`.
    pub fn create(path: &Path, capacity_pages: u64) -> StoreResult<FilePageStore> {
        let freemap_pages = capacity_pages.div_ceil(PAGES_PER_MAP_PAGE).max(1);
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let store = FilePageStore {
            id: StoreId::fresh(),
            file,
            freemap_pages,
            state: Mutex::new(FreeState {
                bitmap: vec![0; (freemap_pages * PAGE_SIZE as u64) as usize],
                data_pages: 0,
            }),
            root: AtomicU64::new(u64::MAX),
            generation: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
            #[cfg(unix)]
            map: None,
        };
        store.sync()?;
        Ok(store)
    }

    /// Open an existing page file: both header slots are validated
    /// (magic, version, page size, plausible free-map size, checksum
    /// over header + free-map copy) and the valid slot with the highest
    /// generation wins, so a crash during the previous [`sync`] rolls
    /// back to the last complete commit. A file where *no* slot is
    /// valid — truncated, garbage, or corrupted in both slots — is
    /// rejected with a typed error. A truncated data tail is only
    /// detectable by the checksummed record streams above.
    ///
    /// [`sync`]: PageStore::sync
    pub fn open(path: &Path) -> StoreResult<FilePageStore> {
        Self::open_inner(path, false)
    }

    /// Like [`open`](Self::open), but reads go through a read-only
    /// memory mapping of the file (pages appended after opening fall
    /// back to `pread`).
    pub fn open_mmap(path: &Path) -> StoreResult<FilePageStore> {
        Self::open_inner(path, true)
    }

    /// Parse and validate one header slot; `Err` carries the reason the
    /// slot is unusable.
    fn read_slot(file: &File, file_len: u64, slot: u64) -> StoreResult<Slot> {
        let corrupt = |what: &str| {
            StoreError::Io(io::Error::new(io::ErrorKind::InvalidData, what.to_string()))
        };
        // Short files read as zeros past EOF, so a truncated header
        // fails the magic check instead of slicing out of bounds.
        let mut header = vec![0u8; PAGE_SIZE];
        read_up_to_at(file, &mut header, slot * PAGE_SIZE as u64)?;
        if le_u32(&header, 0) != FILE_MAGIC {
            return Err(corrupt("not a vsim page file (bad magic)"));
        }
        if le_u32(&header, 4) != FILE_VERSION {
            return Err(corrupt("unsupported page-file version"));
        }
        if le_u32(&header, 8) as usize != PAGE_SIZE {
            return Err(corrupt("page file written with a different page size"));
        }
        let freemap_pages = le_u32(&header, 12) as u64;
        let data_pages = le_u64(&header, 16);
        let root = le_u64(&header, 24);
        let generation = le_u64(&header, 32);
        let stored_checksum = le_u64(&header, 40);
        if freemap_pages == 0
            || freemap_pages > MAX_FREEMAP_PAGES
            || data_pages > freemap_pages * PAGES_PER_MAP_PAGE
        {
            return Err(corrupt("page-file header out of range"));
        }
        if file_len < (HEADER_SLOTS + 2 * freemap_pages) * PAGE_SIZE as u64 {
            return Err(corrupt("page file truncated inside its free map"));
        }
        let mut bitmap = vec![0u8; (freemap_pages * PAGE_SIZE as u64) as usize];
        let map_offset = (HEADER_SLOTS + slot * freemap_pages) * PAGE_SIZE as u64;
        read_exact_at(file, &mut bitmap, map_offset)?;
        let mut meta = header[..HEADER_LEN - 8].to_vec();
        meta.extend_from_slice(&bitmap);
        let found = fnv1a(&meta);
        if found != stored_checksum {
            return Err(StoreError::Corruption { page: slot, expected: stored_checksum, found });
        }
        let state = FreeState { bitmap, data_pages };
        if state.min_data_pages() > data_pages {
            return Err(corrupt("free map allocates pages beyond the recorded page count"));
        }
        Ok(Slot { freemap_pages, data_pages, root, generation, bitmap: state.bitmap })
    }

    fn open_inner(path: &Path, want_map: bool) -> StoreResult<FilePageStore> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let slots = [Self::read_slot(&file, file_len, 0), Self::read_slot(&file, file_len, 1)];
        let best = match slots {
            [Ok(a), Ok(b)] => {
                if a.generation >= b.generation {
                    a
                } else {
                    b
                }
            }
            [Ok(a), Err(_)] => a,
            [Err(_), Ok(b)] => b,
            // Neither slot is usable; report the first slot's reason.
            [Err(a), Err(_)] => return Err(a),
        };
        let map = if want_map { Some(mmap::Map::new(&file, file_len as usize)?) } else { None };
        Ok(FilePageStore {
            id: StoreId::fresh(),
            file,
            freemap_pages: best.freemap_pages,
            state: Mutex::new(FreeState { bitmap: best.bitmap, data_pages: best.data_pages }),
            root: AtomicU64::new(best.root),
            generation: AtomicU64::new(best.generation),
            dirty: AtomicBool::new(false),
            #[cfg(unix)]
            map,
        })
    }

    /// Maximum data pages this file can ever hold (fixed at create).
    pub fn capacity_pages(&self) -> u64 {
        self.freemap_pages * PAGES_PER_MAP_PAGE
    }

    /// Data pages currently marked allocated in the free map.
    pub fn allocated_pages(&self) -> u64 {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.bitmap.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// Maximal runs of currently allocated data pages as `(first, len)`
    /// spans, ascending. The shadow-header save protocol snapshots this
    /// before writing a replacement index so it can free the previous
    /// snapshot after the atomic root switch.
    pub fn allocated_spans(&self) -> Vec<(u64, u64)> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for page in 0..state.data_pages {
            if !state.bit(page) {
                continue;
            }
            match spans.last_mut() {
                Some((first, len)) if *first + *len == page => *len += 1,
                _ => spans.push((page, 1)),
            }
        }
        spans
    }

    /// Generation of the last committed metadata snapshot.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The persisted root pointer, or `None` if never set.
    pub fn root(&self) -> Option<u64> {
        match self.root.load(Ordering::Relaxed) {
            u64::MAX => None,
            page => Some(page),
        }
    }

    /// Set the root pointer; persisted on the next [`PageStore::sync`].
    pub fn set_root(&self, page: u64) {
        self.root.store(page, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
    }

    /// Close this store *without* the best-effort sync-on-drop: the
    /// on-disk state stays exactly what the last successful
    /// [`sync`](PageStore::sync) committed. Crash simulation uses this
    /// to model a process that died before it could flush — a failed
    /// save must not commit its partial work on the way out.
    pub fn abandon(self) {
        self.dirty.store(false, Ordering::Relaxed);
    }

    fn data_offset(&self, page: u64) -> u64 {
        (HEADER_SLOTS + 2 * self.freemap_pages + page) * PAGE_SIZE as u64
    }
}

impl PageStore for FilePageStore {
    fn id(&self) -> StoreId {
        self.id
    }

    fn page_count(&self) -> u64 {
        // Reading one u64 is safe even if a writer panicked mid-update.
        self.state.lock().unwrap_or_else(PoisonError::into_inner).data_pages
    }

    fn backend(&self) -> Backend {
        #[cfg(unix)]
        if self.map.is_some() {
            return Backend::Mmap;
        }
        Backend::File
    }

    fn allocate(&self, pages: u64) -> StoreResult<u64> {
        assert!(pages >= 1, "cannot allocate an empty span");
        let mut state = self.state.lock().map_err(|_| StoreError::Poisoned)?;
        let capacity = self.capacity_pages();
        let Some(first) = state.find_run(pages, capacity) else {
            return Err(StoreError::Full { requested: pages, capacity });
        };
        for page in first..first + pages {
            state.set_bit(page, true);
        }
        self.dirty.store(true, Ordering::Relaxed);
        if first + pages > state.data_pages {
            state.data_pages = first + pages;
            // Extend so even never-written pages are readable (zeros).
            self.file.set_len(self.data_offset(state.data_pages))?;
        }
        Ok(first)
    }

    fn free(&self, first: u64, pages: u64) -> StoreResult<()> {
        let mut state = self.state.lock().map_err(|_| StoreError::Poisoned)?;
        for page in first..first + pages {
            state.set_bit(page, false);
        }
        self.dirty.store(true, Ordering::Relaxed);
        Ok(())
    }

    fn read_into(&self, page: u64, buf: &mut [u8]) -> StoreResult<()> {
        let buf = &mut buf[..PAGE_SIZE];
        let offset = self.data_offset(page);
        #[cfg(unix)]
        if let Some(map) = &self.map {
            if offset as usize + PAGE_SIZE <= map.len() {
                map.read(offset as usize, buf);
                return Ok(());
            }
        }
        buf.fill(0);
        read_up_to_at(&self.file, buf, offset)?;
        Ok(())
    }

    fn write_page(&self, page: u64, data: &[u8]) -> StoreResult<()> {
        assert!(data.len() <= PAGE_SIZE, "page write of {} bytes", data.len());
        {
            let state = self.state.lock().map_err(|_| StoreError::Poisoned)?;
            assert!(page < state.data_pages, "write to unallocated page {page}");
        }
        write_all_at(&self.file, data, self.data_offset(page))?;
        Ok(())
    }

    /// Commit the current metadata atomically: flush data pages, then
    /// write free-map copy and header into the *other* slot at the next
    /// generation, then flush again. A crash at any point leaves the
    /// previous slot intact, so [`open`](FilePageStore::open) recovers
    /// either the old or the new complete state, never a mix.
    fn sync(&self) -> StoreResult<()> {
        let (bitmap, data_pages) = {
            let state = self.state.lock().map_err(|_| StoreError::Poisoned)?;
            (state.bitmap.clone(), state.data_pages)
        };
        // 1. Data first: the commit record must never become durable
        //    before the pages it points at.
        self.file.sync_data()?;
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let slot = generation % 2;
        let mut meta = Vec::with_capacity(HEADER_LEN - 8 + bitmap.len());
        meta.extend_from_slice(&FILE_MAGIC.to_le_bytes());
        meta.extend_from_slice(&FILE_VERSION.to_le_bytes());
        meta.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        meta.extend_from_slice(&(self.freemap_pages as u32).to_le_bytes());
        meta.extend_from_slice(&data_pages.to_le_bytes());
        meta.extend_from_slice(&self.root.load(Ordering::Relaxed).to_le_bytes());
        meta.extend_from_slice(&generation.to_le_bytes());
        meta.extend_from_slice(&bitmap);
        let checksum = fnv1a(&meta);
        let (header_prefix, bitmap_slice) = meta.split_at(HEADER_LEN - 8);
        let mut header = vec![0u8; PAGE_SIZE];
        header[..HEADER_LEN - 8].copy_from_slice(header_prefix);
        header[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&checksum.to_le_bytes());
        let map_offset = (HEADER_SLOTS + slot * self.freemap_pages) * PAGE_SIZE as u64;
        write_all_at(&self.file, bitmap_slice, map_offset)?;
        write_all_at(&self.file, &header, slot * PAGE_SIZE as u64)?;
        // 2. Commit: both slot writes become durable; if this fsync
        //    never completes, the other slot still holds the last
        //    committed generation.
        self.file.sync_all()?;
        self.generation.store(generation, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for FilePageStore {
    fn drop(&mut self) {
        // Best-effort durability for callers that forget to sync.
        if self.dirty.load(Ordering::Relaxed) {
            let _ = self.sync();
        }
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::write_all_at(file, buf, offset)
}

/// Read up to `buf.len()` bytes at `offset`; bytes past EOF are left
/// untouched (callers pre-zero), so a short tail reads as zeros.
#[cfg(unix)]
fn read_up_to_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    while !buf.is_empty() {
        match file.read_at(buf, offset)? {
            0 => return Ok(()),
            n => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
        }
    }
    Ok(())
}

#[cfg(not(unix))]
compile_error!("FilePageStore currently requires a unix target (pread/pwrite)");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vsim_file_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Byte offset of slot `slot`'s free-map copy in a file with one
    /// free-map page per copy (the capacity every test here uses).
    fn map_offset(slot: u64) -> usize {
        ((HEADER_SLOTS + slot) * PAGE_SIZE as u64) as usize
    }

    #[test]
    fn write_read_round_trip_survives_reopen() {
        let path = tmp("round_trip.vspf");
        let payload: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        {
            let store = FilePageStore::create(&path, 64).unwrap();
            let first = store.allocate(3).unwrap();
            store.write_page(first + 1, &payload).unwrap();
            store.set_root(first);
            store.sync().unwrap();
        }
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.page_count(), 3);
        assert_eq!(store.root(), Some(0));
        assert_eq!(store.backend(), Backend::File);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(1, &mut buf).unwrap();
        assert_eq!(buf, payload);
        store.read_into(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "never-written page is zeros");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_reads_match_pread() {
        let path = tmp("mmap.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            let first = store.allocate(2).unwrap();
            store.write_page(first, &[0xabu8; 100]).unwrap();
            store.write_page(first + 1, &[0xcdu8; PAGE_SIZE]).unwrap();
            store.sync().unwrap();
        }
        let plain = FilePageStore::open(&path).unwrap();
        let mapped = FilePageStore::open_mmap(&path).unwrap();
        assert_eq!(mapped.backend(), Backend::Mmap);
        let (mut a, mut b) = (vec![0u8; PAGE_SIZE], vec![0u8; PAGE_SIZE]);
        for page in 0..2 {
            plain.read_into(page, &mut a).unwrap();
            mapped.read_into(page, &mut b).unwrap();
            assert_eq!(a, b, "page {page} differs between pread and mmap");
        }
        // A page appended after mapping falls back to pread.
        let extra = mapped.allocate(1).unwrap();
        mapped.write_page(extra, &[9u8; 8]).unwrap();
        mapped.read_into(extra, &mut b).unwrap();
        assert_eq!(&b[..8], &[9u8; 8][..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn freed_spans_are_reused_first_fit() {
        let path = tmp("reuse.vspf");
        let store = FilePageStore::create(&path, 64).unwrap();
        let a = store.allocate(2).unwrap(); // [0, 1]
        let b = store.allocate(3).unwrap(); // [2, 4]
        assert_eq!((a, b), (0, 2));
        store.free(a, 2).unwrap();
        assert_eq!(store.allocate(1).unwrap(), 0, "freed space is reused");
        assert_eq!(store.allocate(1).unwrap(), 1);
        assert_eq!(store.allocate(2).unwrap(), 5, "no free run of 2 before the high-water mark");
        assert_eq!(store.page_count(), 7);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exhausted_capacity_is_a_typed_error_not_a_panic() {
        let path = tmp("full.vspf");
        let store = FilePageStore::create(&path, 8).unwrap();
        let capacity = store.capacity_pages();
        // One allocation larger than the whole file.
        match store.allocate(capacity + 1) {
            Err(StoreError::Full { requested, capacity: cap }) => {
                assert_eq!(requested, capacity + 1);
                assert_eq!(cap, capacity);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // The store keeps working after the failed allocation.
        let first = store.allocate(1).unwrap();
        store.write_page(first, &[1u8; 4]).unwrap();
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn both_slots_corrupted_is_rejected() {
        let path = tmp("corrupt.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            store.allocate(1).unwrap();
            store.sync().unwrap();
        }
        // Flip one byte in each free-map copy, leaving the checksums.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[map_offset(0) + 100] ^= 0xff;
        bytes[map_offset(1) + 100] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupting_the_newest_slot_falls_back_to_the_previous_commit() {
        let path = tmp("fallback.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap(); // gen 1, slot 1
            assert_eq!(store.generation(), 1);
            store.allocate(2).unwrap();
            store.sync().unwrap(); // gen 2, slot 0
            assert_eq!(store.generation(), 2);
        }
        // Corrupt the newest commit (generation 2 lives in slot 0).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[map_offset(0)] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.generation(), 1, "rolled back to the surviving commit");
        assert_eq!(store.allocated_pages(), 0, "generation 1 predates the allocation");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_alternates_slots_and_open_picks_the_newest() {
        let path = tmp("alternate.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            store.allocate(1).unwrap();
            store.sync().unwrap();
            store.allocate(1).unwrap();
            store.sync().unwrap();
            assert_eq!(store.generation(), 3);
        }
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.generation(), 3);
        assert_eq!(store.allocated_pages(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_metadata_is_rejected() {
        let path = tmp("truncated.vspf");
        {
            FilePageStore::create(&path, 16).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..PAGE_SIZE / 2]).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        let io: io::Error = err.into();
        assert_eq!(io.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_and_out_of_range_headers_are_rejected() {
        let path = tmp("garbage.vspf");
        // Arbitrary garbage: bad magic in both slots.
        std::fs::write(&path, vec![0x5au8; 3 * PAGE_SIZE]).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "got: {err}");

        // A structurally valid header claiming an impossible free-map
        // size must be rejected before any huge allocation happens.
        let mut header = vec![0u8; PAGE_SIZE];
        header[0..4].copy_from_slice(&FILE_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&FILE_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        header[12..16].copy_from_slice(&u32::MAX.to_le_bytes()); // freemap_pages
        let mut bytes = vec![0u8; 3 * PAGE_SIZE];
        bytes[..PAGE_SIZE].copy_from_slice(&header);
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("out of range"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn freemap_page_count_mismatch_is_rejected() {
        let path = tmp("mismatch.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            store.allocate(1).unwrap();
            store.sync().unwrap(); // gen 2 in slot 0
        }
        // Mark a page allocated beyond the recorded page count in both
        // slots and fix up both checksums, so only the semantic check
        // can catch the mismatch.
        let mut bytes = std::fs::read(&path).unwrap();
        for slot in 0..2usize {
            let m = map_offset(slot as u64);
            bytes[m + 2] |= 0x80; // data page 23, page count is <= 2
            let mut meta = bytes[slot * PAGE_SIZE..slot * PAGE_SIZE + HEADER_LEN - 8].to_vec();
            meta.extend_from_slice(&bytes[m..m + PAGE_SIZE]);
            let sum = fnv1a(&meta);
            bytes[slot * PAGE_SIZE + HEADER_LEN - 8..slot * PAGE_SIZE + HEADER_LEN]
                .copy_from_slice(&sum.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("beyond the recorded page count"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_data_tail_reads_as_zeros() {
        let path = tmp("torn_tail.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            let first = store.allocate(1).unwrap();
            store.write_page(first, &[7u8; PAGE_SIZE]).unwrap();
            store.sync().unwrap();
        }
        // Cut the file mid data page (simulates a torn append).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - PAGE_SIZE / 2]).unwrap();
        let store = FilePageStore::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(0, &mut buf).unwrap();
        assert_eq!(&buf[..PAGE_SIZE / 2], &[7u8; PAGE_SIZE / 2][..]);
        assert!(buf[PAGE_SIZE / 2..].iter().all(|&b| b == 0), "torn tail reads as zeros");
        std::fs::remove_file(&path).unwrap();
    }
}
