//! Durable page file: the real-I/O counterpart of
//! [`InMemoryPageStore`](crate::InMemoryPageStore).
//!
//! # On-disk layout
//!
//! ```text
//! physical page 0            header (magic, version, page size,
//!                            free-map size, data-page high-water,
//!                            root pointer, FNV-1a checksum)
//! physical pages 1..=F       free map: one bit per data page
//!                            (1 = allocated), F fixed at create time
//! physical pages F+1..       data pages; logical data page p lives at
//!                            byte offset (1 + F + p) * PAGE_SIZE
//! ```
//!
//! Data pages are addressed logically from 0, so page numbers are
//! interchangeable with the in-memory store's and the buffer pool never
//! sees the header or free map. Allocation is first-fit over the bitmap
//! and spans are contiguous; [`PageStore::free`] clears bits so the
//! space is genuinely reused. Metadata (header + free map) is written
//! by [`PageStore::sync`] under a checksum covering both; [`open`]
//! verifies magic, version, page size, and checksum, and rejects files
//! whose metadata region is truncated. A torn *data* tail (file cut
//! mid-page) reads as zeros, which the length-prefixed, checksummed
//! record streams above this layer detect — see `stream.rs`.
//!
//! [`open`]: FilePageStore::open

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cost::PAGE_SIZE;
use crate::page::{Backend, PageStore, StoreId};
use crate::stream::fnv1a;

const FILE_MAGIC: u32 = 0x5653_5046; // "VSPF"
const FILE_VERSION: u32 = 1;
const HEADER_LEN: usize = 40;

/// Data pages addressable per free-map page (one bit each).
const PAGES_PER_MAP_PAGE: u64 = (PAGE_SIZE * 8) as u64;

#[derive(Debug)]
struct FreeState {
    /// One bit per data page, 1 = allocated. Length is fixed at create
    /// time (`freemap_pages * PAGE_SIZE` bytes).
    bitmap: Vec<u8>,
    /// High-water mark: data pages backed by file space so far.
    data_pages: u64,
}

impl FreeState {
    fn bit(&self, page: u64) -> bool {
        self.bitmap[(page / 8) as usize] & (1 << (page % 8)) != 0
    }

    fn set_bit(&mut self, page: u64, on: bool) {
        let (byte, mask) = ((page / 8) as usize, 1u8 << (page % 8));
        if on {
            self.bitmap[byte] |= mask;
        } else {
            self.bitmap[byte] &= !mask;
        }
    }

    /// First-fit search for a contiguous run of `pages` free bits.
    fn find_run(&self, pages: u64, capacity: u64) -> Option<u64> {
        let mut run_start = 0u64;
        let mut run_len = 0u64;
        for page in 0..capacity {
            if self.bit(page) {
                run_len = 0;
                run_start = page + 1;
            } else {
                run_len += 1;
                if run_len == pages {
                    return Some(run_start);
                }
            }
        }
        None
    }
}

#[cfg(unix)]
mod mmap {
    use std::ffi::c_void;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// Read-only shared mapping of the front of the page file. Pages
    /// past the mapped length (the file grew after opening) fall back
    /// to `pread` in the caller.
    #[derive(Debug)]
    pub struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_SHARED over a regular file;
    // the pointer is only ever read, never handed out mutably, and the
    // region stays valid until Drop unmaps it, so concurrent reads from
    // multiple threads are safe.
    unsafe impl Send for Map {}
    // SAFETY: as above — shared read-only access to an immutable-length
    // mapping needs no synchronization.
    unsafe impl Sync for Map {}

    impl Map {
        pub fn new(file: &std::fs::File, len: usize) -> io::Result<Map> {
            if len == 0 {
                return Ok(Map { ptr: std::ptr::null_mut(), len: 0 });
            }
            // SAFETY: mmap is called with a valid open fd, a length we
            // just measured, and no fixed address; the result is checked
            // against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_SHARED, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn len(&self) -> usize {
            self.len
        }

        /// Copy `buf.len()` bytes starting at `offset`; the caller must
        /// keep `offset + buf.len() <= self.len()`.
        pub fn read(&self, offset: usize, buf: &mut [u8]) {
            assert!(offset + buf.len() <= self.len);
            // SAFETY: the assert above keeps the source range inside the
            // live mapping, and src/dst do not overlap (buf is a caller
            // buffer, never the mapping itself).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    (self.ptr as *const u8).add(offset),
                    buf.as_mut_ptr(),
                    buf.len(),
                );
            }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: ptr/len came from a successful mmap in new()
                // and are unmapped exactly once.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

/// A single-file durable page store with a free map for page reuse and
/// an optional read-only mmap fast path. See the module docs for the
/// on-disk layout and recovery story.
#[derive(Debug)]
pub struct FilePageStore {
    id: StoreId,
    file: File,
    freemap_pages: u64,
    state: Mutex<FreeState>,
    /// User-defined root pointer persisted in the header (e.g. the first
    /// page of a directory stream).
    root: AtomicU64,
    #[cfg(unix)]
    map: Option<mmap::Map>,
}

impl FilePageStore {
    /// Create a fresh page file able to hold at least `capacity_pages`
    /// data pages (rounded up to whole free-map pages; one free-map
    /// page covers 32768 data pages = 128 MiB). Truncates any existing
    /// file at `path`.
    pub fn create(path: &Path, capacity_pages: u64) -> io::Result<FilePageStore> {
        let freemap_pages = capacity_pages.div_ceil(PAGES_PER_MAP_PAGE).max(1);
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let store = FilePageStore {
            id: StoreId::fresh(),
            file,
            freemap_pages,
            state: Mutex::new(FreeState {
                bitmap: vec![0; (freemap_pages * PAGE_SIZE as u64) as usize],
                data_pages: 0,
            }),
            root: AtomicU64::new(u64::MAX),
            #[cfg(unix)]
            map: None,
        };
        store.sync()?;
        Ok(store)
    }

    /// Open an existing page file, verifying magic, version, page size,
    /// and the metadata checksum. A file whose header or free map is
    /// truncated or corrupted is rejected here; a truncated data tail
    /// is only detectable by the checksummed record streams above.
    pub fn open(path: &Path) -> io::Result<FilePageStore> {
        Self::open_inner(path, false)
    }

    /// Like [`open`](Self::open), but reads go through a read-only
    /// memory mapping of the file (pages appended after opening fall
    /// back to `pread`).
    pub fn open_mmap(path: &Path) -> io::Result<FilePageStore> {
        Self::open_inner(path, true)
    }

    fn open_inner(path: &Path, want_map: bool) -> io::Result<FilePageStore> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if file_len < PAGE_SIZE as u64 {
            return Err(corrupt("page file shorter than its header"));
        }
        let mut header = vec![0u8; PAGE_SIZE];
        read_exact_at(&file, &mut header, 0)?;
        let u32_at = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
        if u32_at(0) != FILE_MAGIC {
            return Err(corrupt("not a vsim page file (bad magic)"));
        }
        if u32_at(4) != FILE_VERSION {
            return Err(corrupt("unsupported page-file version"));
        }
        if u32_at(8) as usize != PAGE_SIZE {
            return Err(corrupt("page file written with a different page size"));
        }
        let freemap_pages = u32_at(12) as u64;
        let data_pages = u64_at(16);
        let root = u64_at(24);
        let stored_checksum = u64_at(32);
        if freemap_pages == 0 || data_pages > freemap_pages * PAGES_PER_MAP_PAGE {
            return Err(corrupt("page-file header out of range"));
        }
        if file_len < (1 + freemap_pages) * PAGE_SIZE as u64 {
            return Err(corrupt("page file truncated inside its free map"));
        }
        let mut bitmap = vec![0u8; (freemap_pages * PAGE_SIZE as u64) as usize];
        read_exact_at(&file, &mut bitmap, PAGE_SIZE as u64)?;
        let mut meta = header[..HEADER_LEN - 8].to_vec();
        meta.extend_from_slice(&bitmap);
        if fnv1a(&meta) != stored_checksum {
            return Err(corrupt("page-file metadata checksum mismatch"));
        }
        let map = if want_map { Some(mmap::Map::new(&file, file_len as usize)?) } else { None };
        Ok(FilePageStore {
            id: StoreId::fresh(),
            file,
            freemap_pages,
            state: Mutex::new(FreeState { bitmap, data_pages }),
            root: AtomicU64::new(root),
            #[cfg(unix)]
            map,
        })
    }

    /// Maximum data pages this file can ever hold (fixed at create).
    pub fn capacity_pages(&self) -> u64 {
        self.freemap_pages * PAGES_PER_MAP_PAGE
    }

    /// Data pages currently marked allocated in the free map.
    pub fn allocated_pages(&self) -> u64 {
        let state = self.state.lock().unwrap();
        state.bitmap.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// The persisted root pointer, or `None` if never set.
    pub fn root(&self) -> Option<u64> {
        match self.root.load(Ordering::Relaxed) {
            u64::MAX => None,
            page => Some(page),
        }
    }

    /// Set the root pointer; persisted on the next [`PageStore::sync`].
    pub fn set_root(&self, page: u64) {
        self.root.store(page, Ordering::Relaxed);
    }

    fn data_offset(&self, page: u64) -> u64 {
        (1 + self.freemap_pages + page) * PAGE_SIZE as u64
    }
}

impl PageStore for FilePageStore {
    fn id(&self) -> StoreId {
        self.id
    }

    fn page_count(&self) -> u64 {
        self.state.lock().unwrap().data_pages
    }

    fn backend(&self) -> Backend {
        #[cfg(unix)]
        if self.map.is_some() {
            return Backend::Mmap;
        }
        Backend::File
    }

    fn allocate(&self, pages: u64) -> u64 {
        assert!(pages >= 1, "cannot allocate an empty span");
        let mut state = self.state.lock().unwrap();
        let capacity = self.capacity_pages();
        let first = state
            .find_run(pages, capacity)
            .unwrap_or_else(|| panic!("page file full ({capacity} page capacity)"));
        for page in first..first + pages {
            state.set_bit(page, true);
        }
        if first + pages > state.data_pages {
            state.data_pages = first + pages;
            // Extend so even never-written pages are readable (zeros).
            let _ = self.file.set_len(self.data_offset(state.data_pages));
        }
        first
    }

    fn free(&self, first: u64, pages: u64) {
        let mut state = self.state.lock().unwrap();
        for page in first..first + pages {
            state.set_bit(page, false);
        }
    }

    fn read_into(&self, page: u64, buf: &mut [u8]) -> io::Result<()> {
        let buf = &mut buf[..PAGE_SIZE];
        let offset = self.data_offset(page);
        #[cfg(unix)]
        if let Some(map) = &self.map {
            if offset as usize + PAGE_SIZE <= map.len() {
                map.read(offset as usize, buf);
                return Ok(());
            }
        }
        buf.fill(0);
        read_up_to_at(&self.file, buf, offset)
    }

    fn write_page(&self, page: u64, data: &[u8]) -> io::Result<()> {
        assert!(data.len() <= PAGE_SIZE, "page write of {} bytes", data.len());
        {
            let state = self.state.lock().unwrap();
            assert!(page < state.data_pages, "write to unallocated page {page}");
        }
        write_all_at(&self.file, data, self.data_offset(page))
    }

    fn sync(&self) -> io::Result<()> {
        let (bitmap, data_pages) = {
            let state = self.state.lock().unwrap();
            (state.bitmap.clone(), state.data_pages)
        };
        let mut meta = Vec::with_capacity(HEADER_LEN - 8 + bitmap.len());
        meta.extend_from_slice(&FILE_MAGIC.to_le_bytes());
        meta.extend_from_slice(&FILE_VERSION.to_le_bytes());
        meta.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        meta.extend_from_slice(&(self.freemap_pages as u32).to_le_bytes());
        meta.extend_from_slice(&data_pages.to_le_bytes());
        meta.extend_from_slice(&self.root.load(Ordering::Relaxed).to_le_bytes());
        meta.extend_from_slice(&bitmap);
        let checksum = fnv1a(&meta);
        let (header_prefix, bitmap_slice) = meta.split_at(HEADER_LEN - 8);
        let mut header = vec![0u8; PAGE_SIZE];
        header[..HEADER_LEN - 8].copy_from_slice(header_prefix);
        header[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&checksum.to_le_bytes());
        write_all_at(&self.file, &header, 0)?;
        write_all_at(&self.file, bitmap_slice, PAGE_SIZE as u64)?;
        self.file.sync_all()
    }
}

impl Drop for FilePageStore {
    fn drop(&mut self) {
        // Best-effort durability for callers that forget to sync.
        let _ = self.sync();
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::write_all_at(file, buf, offset)
}

/// Read up to `buf.len()` bytes at `offset`; bytes past EOF are left
/// untouched (callers pre-zero), so a short tail reads as zeros.
#[cfg(unix)]
fn read_up_to_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    while !buf.is_empty() {
        match file.read_at(buf, offset)? {
            0 => return Ok(()),
            n => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
        }
    }
    Ok(())
}

#[cfg(not(unix))]
compile_error!("FilePageStore currently requires a unix target (pread/pwrite)");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vsim_file_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_round_trip_survives_reopen() {
        let path = tmp("round_trip.vspf");
        let payload: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        {
            let store = FilePageStore::create(&path, 64).unwrap();
            let first = store.allocate(3);
            store.write_page(first + 1, &payload).unwrap();
            store.set_root(first);
            store.sync().unwrap();
        }
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.page_count(), 3);
        assert_eq!(store.root(), Some(0));
        assert_eq!(store.backend(), Backend::File);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(1, &mut buf).unwrap();
        assert_eq!(buf, payload);
        store.read_into(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "never-written page is zeros");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_reads_match_pread() {
        let path = tmp("mmap.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            let first = store.allocate(2);
            store.write_page(first, &[0xabu8; 100]).unwrap();
            store.write_page(first + 1, &[0xcdu8; PAGE_SIZE]).unwrap();
            store.sync().unwrap();
        }
        let plain = FilePageStore::open(&path).unwrap();
        let mapped = FilePageStore::open_mmap(&path).unwrap();
        assert_eq!(mapped.backend(), Backend::Mmap);
        let (mut a, mut b) = (vec![0u8; PAGE_SIZE], vec![0u8; PAGE_SIZE]);
        for page in 0..2 {
            plain.read_into(page, &mut a).unwrap();
            mapped.read_into(page, &mut b).unwrap();
            assert_eq!(a, b, "page {page} differs between pread and mmap");
        }
        // A page appended after mapping falls back to pread.
        let extra = mapped.allocate(1);
        mapped.write_page(extra, &[9u8; 8]).unwrap();
        mapped.read_into(extra, &mut b).unwrap();
        assert_eq!(&b[..8], &[9u8; 8][..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn freed_spans_are_reused_first_fit() {
        let path = tmp("reuse.vspf");
        let store = FilePageStore::create(&path, 64).unwrap();
        let a = store.allocate(2); // [0, 1]
        let b = store.allocate(3); // [2, 4]
        assert_eq!((a, b), (0, 2));
        store.free(a, 2);
        assert_eq!(store.allocate(1), 0, "freed space is reused");
        assert_eq!(store.allocate(1), 1);
        assert_eq!(store.allocate(2), 5, "no free run of 2 before the high-water mark");
        assert_eq!(store.page_count(), 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_metadata_is_rejected() {
        let path = tmp("corrupt.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            store.allocate(1);
            store.sync().unwrap();
        }
        // Flip one free-map byte without updating the checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 100] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_metadata_is_rejected() {
        let path = tmp("truncated.vspf");
        {
            FilePageStore::create(&path, 16).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..PAGE_SIZE / 2]).unwrap();
        let err = FilePageStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_data_tail_reads_as_zeros() {
        let path = tmp("torn_tail.vspf");
        {
            let store = FilePageStore::create(&path, 16).unwrap();
            let first = store.allocate(1);
            store.write_page(first, &[7u8; PAGE_SIZE]).unwrap();
            store.sync().unwrap();
        }
        // Cut the file mid data page (simulates a torn append).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - PAGE_SIZE / 2]).unwrap();
        let store = FilePageStore::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(0, &mut buf).unwrap();
        assert_eq!(&buf[..PAGE_SIZE / 2], &[7u8; PAGE_SIZE / 2][..]);
        assert!(buf[PAGE_SIZE / 2..].iter().all(|&b| b == 0), "torn tail reads as zeros");
        std::fs::remove_file(&path).unwrap();
    }
}
