//! Typed storage errors.
//!
//! Every fallible operation in this crate returns [`StoreResult`]: a
//! fault in one page store — an I/O error, a checksum mismatch, a full
//! page file, a poisoned lock, a simulated crash — surfaces as a value
//! the query layer can attach to one query's stats instead of aborting
//! the process. The index layer still speaks `io::Result`, so
//! [`StoreError`] converts *losslessly* in both directions: wrapping
//! into an `io::Error` preserves the typed value as the error source,
//! and converting back recovers it by downcast. A typed error born in
//! the page store therefore survives the trip through `io::Read`-based
//! deserialization code unchanged.

use std::fmt;
use std::io;

/// Result of a storage operation.
pub type StoreResult<T> = Result<T, StoreError>;

/// What went wrong in a page store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed (includes injected `ENOSPC`
    /// and sync failures).
    Io(io::Error),
    /// A page's contents failed checksum verification, and bounded
    /// re-reads did not help.
    Corruption {
        /// The page whose checksum did not verify.
        page: u64,
        /// The checksum recorded when the page was written.
        expected: u64,
        /// The checksum computed over the bytes actually read.
        found: u64,
    },
    /// Allocation would exceed the store's fixed capacity.
    Full {
        /// Pages the caller asked for.
        requested: u64,
        /// Total data pages the store can ever hold.
        capacity: u64,
    },
    /// A storage mutex was poisoned by a thread that panicked while
    /// holding it, and the guarded state cannot be trusted.
    Poisoned,
    /// The store simulated a power loss (fault injection): this and
    /// every subsequent operation is rejected.
    Crashed,
}

/// Payload-free classification of a [`StoreError`], suitable for
/// embedding in `Copy` stats structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreErrorKind {
    Io,
    Corruption,
    Full,
    Poisoned,
    Crashed,
}

impl StoreError {
    /// The payload-free classification of this error.
    pub fn kind(&self) -> StoreErrorKind {
        match self {
            StoreError::Io(_) => StoreErrorKind::Io,
            StoreError::Corruption { .. } => StoreErrorKind::Corruption,
            StoreError::Full { .. } => StoreErrorKind::Full,
            StoreError::Poisoned => StoreErrorKind::Poisoned,
            StoreError::Crashed => StoreErrorKind::Crashed,
        }
    }

    /// The [`io::ErrorKind`] this error maps to when crossing an
    /// `io::Result` boundary.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            StoreError::Io(e) => e.kind(),
            StoreError::Corruption { .. } => io::ErrorKind::InvalidData,
            StoreError::Full { .. } => io::ErrorKind::StorageFull,
            StoreError::Poisoned | StoreError::Crashed => io::ErrorKind::Other,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corruption { page, expected, found } => write!(
                f,
                "page {page} checksum mismatch (torn write?): \
                 expected {expected:#018x}, found {found:#018x}"
            ),
            StoreError::Full { requested, capacity } => {
                write!(f, "page store full: requested {requested} pages, capacity {capacity}")
            }
            StoreError::Poisoned => f.write_str("storage state poisoned by a panicked thread"),
            StoreError::Crashed => f.write_str("store crashed (simulated power loss)"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for io::Error {
    /// Wrap a typed error for `io::Result` layers; the typed value is
    /// kept as the error's source so [`From<io::Error>`] can recover it.
    fn from(e: StoreError) -> io::Error {
        match e {
            StoreError::Io(inner) => inner,
            other => io::Error::new(other.io_kind(), other),
        }
    }
}

impl From<io::Error> for StoreError {
    /// Recover a typed error previously wrapped by
    /// [`From<StoreError>`]; anything else is a plain I/O fault.
    fn from(e: io::Error) -> StoreError {
        if e.get_ref().is_some_and(|r| r.is::<StoreError>()) {
            if let Some(Ok(typed)) = e.into_inner().map(|b| b.downcast::<StoreError>()) {
                return *typed;
            }
            // get_ref() proved the downcast succeeds, so this branch is
            // unreachable; report the (lost) error as a poisoned state
            // rather than panicking.
            return StoreError::Poisoned;
        }
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_errors_survive_the_io_error_round_trip() {
        let e = StoreError::Corruption { page: 7, expected: 1, found: 2 };
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::InvalidData);
        match StoreError::from(io) {
            StoreError::Corruption { page: 7, expected: 1, found: 2 } => {}
            other => panic!("lost the typed error: {other:?}"),
        }
        let full: io::Error = StoreError::Full { requested: 3, capacity: 8 }.into();
        assert!(matches!(StoreError::from(full), StoreError::Full { requested: 3, capacity: 8 }));
        let crash: io::Error = StoreError::Crashed.into();
        assert!(matches!(StoreError::from(crash), StoreError::Crashed));
    }

    #[test]
    fn plain_io_errors_map_to_the_io_variant() {
        let e = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(matches!(&e, StoreError::Io(inner) if inner.kind() == io::ErrorKind::NotFound));
        assert_eq!(e.kind(), StoreErrorKind::Io);
    }

    #[test]
    fn display_names_the_fault() {
        let c = StoreError::Corruption { page: 3, expected: 0xaa, found: 0xbb };
        assert!(c.to_string().contains("checksum"));
        assert!(c.to_string().contains("page 3"));
        let f = StoreError::Full { requested: 2, capacity: 16 };
        assert!(f.to_string().contains("full"));
        assert_eq!(f.kind(), StoreErrorKind::Full);
    }
}
