//! The paper's simulated-I/O cost constants (Section 5.4).

/// Page size used for node capacities and heap-file accounting.
pub const PAGE_SIZE: usize = 4096;

/// A point-in-time copy of charged I/O; subtract two snapshots to get
/// the cost of one operation. `pages` counts page accesses that went to
/// "disk" (buffer-pool misses); cache hits are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub pages: u64,
    pub bytes: u64,
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, o: IoSnapshot) -> IoSnapshot {
        IoSnapshot { pages: self.pages - o.pages, bytes: self.bytes - o.bytes }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;
    fn add(self, o: IoSnapshot) -> IoSnapshot {
        IoSnapshot { pages: self.pages + o.pages, bytes: self.bytes + o.bytes }
    }
}

/// The paper's cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub ms_per_page: f64,
    pub ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Section 5.4: 8 ms per page access, 200 ns per byte.
        CostModel { ms_per_page: 8.0, ns_per_byte: 200.0 }
    }
}

impl CostModel {
    /// Simulated I/O time in seconds for a counter delta.
    pub fn seconds(&self, io: IoSnapshot) -> f64 {
        io.pages as f64 * self.ms_per_page * 1e-3 + io.bytes as f64 * self.ns_per_byte * 1e-9
    }

    /// Cost constants for a storage backend. `Memory` keeps the
    /// paper's *charged* constants (I/O is simulated); `File` and
    /// `Mmap` use measured-class estimates of what a page access
    /// actually costs on those read paths, so the planner ranks access
    /// paths by realistic rather than simulated economics.
    pub fn for_backend(backend: crate::Backend) -> CostModel {
        match backend {
            crate::Backend::Memory => CostModel::default(),
            // Buffered pread of a warm 4 KiB page.
            crate::Backend::File => CostModel { ms_per_page: 0.02, ns_per_byte: 2.0 },
            // Page-cache-resident mmap read: no syscall per page.
            crate::Backend::Mmap => CostModel { ms_per_page: 0.004, ns_per_byte: 0.8 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_arithmetic() {
        let a = IoSnapshot { pages: 10, bytes: 500 };
        let b = IoSnapshot { pages: 4, bytes: 100 };
        assert_eq!(a - b, IoSnapshot { pages: 6, bytes: 400 });
        assert_eq!(b + b, IoSnapshot { pages: 8, bytes: 200 });
    }

    #[test]
    fn paper_cost_constants() {
        let cm = CostModel::default();
        // 1000 page accesses = 8 s; 5 MB = 1 s.
        let t = cm.seconds(IoSnapshot { pages: 1000, bytes: 5_000_000 });
        assert!((t - 9.0).abs() < 1e-9);
    }

    #[test]
    fn backend_costs_are_ordered() {
        use crate::Backend;
        let io = IoSnapshot { pages: 100, bytes: 100_000 };
        let memory = CostModel::for_backend(Backend::Memory).seconds(io);
        let file = CostModel::for_backend(Backend::File).seconds(io);
        let mmap = CostModel::for_backend(Backend::Mmap).seconds(io);
        assert!(memory > file && file > mmap, "simulated > pread > mmap per page");
        assert_eq!(
            CostModel::for_backend(Backend::Memory).ms_per_page,
            CostModel::default().ms_per_page,
            "the memory backend keeps the paper's charged constants"
        );
    }
}
