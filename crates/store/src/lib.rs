#![forbid(unsafe_code)]
//! Layered storage engine for the simulated-I/O evaluation
//! (Section 5.4 of the paper).
//!
//! The paper runs everything in main memory and *charges* I/O costs —
//! 8 ms per page access, 200 ns per byte read. This crate centralizes
//! that accounting behind a page abstraction:
//!
//! * [`PageStore`] / [`InMemoryPageStore`] — page identity and
//!   allocation for each persistent structure (index nodes, heap file).
//! * [`BufferPool`] — an LRU page cache with pin/unpin. Access methods
//!   read pages *through* the pool; only misses are charged to the
//!   cost model, so a pool shared across queries models a warm cache
//!   while a fresh per-query pool reproduces cold-cache accounting.
//! * [`IoTracker`] / [`QueryContext`] — thread-safe per-query counters
//!   (pages, bytes, cache hits/misses/evictions, distance evaluations,
//!   filter candidates, refinements) threaded through query calls.
//! * [`CostModel`] / [`QueryStats`] — turn counters into the paper's
//!   simulated seconds and Table 2 columns.

mod context;
mod cost;
mod page;
mod pool;
mod stats;
mod tracker;

pub use context::QueryContext;
pub use cost::{CostModel, IoSnapshot, PAGE_SIZE};
pub use page::{InMemoryPageStore, PageKey, PageStore, StoreId};
pub use pool::{BufferPool, PinGuard, PoolStats};
pub use stats::QueryStats;
pub use tracker::{CacheCounts, IoTracker, TrackerSnapshot};

/// Number of pages needed to hold `bytes` bytes.
#[inline]
pub fn pages_for(bytes: usize) -> u64 {
    bytes.div_ceil(PAGE_SIZE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }
}
