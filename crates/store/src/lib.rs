//! Layered storage engine: the paper's simulated-I/O evaluation
//! (Section 5.4) plus a real file-backed page store.
//!
//! The paper runs everything in main memory and *charges* I/O costs —
//! 8 ms per page access, 200 ns per byte read. This crate centralizes
//! that accounting behind a page abstraction, and since the durability
//! refactor also implements it for real:
//!
//! * [`PageStore`] / [`InMemoryPageStore`] / [`FilePageStore`] — page
//!   identity, allocation, and page-granular contents for each
//!   persistent structure (index nodes, heap file). The file store is
//!   a single durable page file with a free map and an optional mmap
//!   read path ([`FilePageStore::open_mmap`]).
//! * [`BufferPool`] — a lock-striped LRU page cache with pin/unpin and
//!   a physical read-through path ([`BufferPool::load`]). Access
//!   methods read pages *through* the pool; only misses are charged to
//!   the cost model, so a pool shared across queries models a warm
//!   cache while a fresh per-query pool reproduces cold-cache
//!   accounting.
//! * [`PageStreamWriter`] / [`PageStreamReader`] — checksummed,
//!   length-prefixed record streams over any page store; the unit of
//!   crash-safe serialization (torn tails are detected, never decoded).
//! * [`StoreError`] / [`FaultInjectingPageStore`] — typed storage
//!   failures (I/O, corruption, exhaustion, crash) propagated as
//!   `Result`s instead of panics, and a deterministic fault-injection
//!   wrapper ([`FaultPlan`]) that exercises every failure path.
//! * [`IoTracker`] / [`QueryContext`] — thread-safe per-query counters
//!   (pages, bytes, cache hits/misses/evictions, distance evaluations,
//!   filter candidates, refinements) threaded through query calls.
//! * [`CostModel`] / [`QueryStats`] — turn counters into the paper's
//!   simulated seconds and Table 2 columns; per-[`Backend`] constants
//!   via [`CostModel::for_backend`] keep charges *charged* on the
//!   memory backend and *measured-class* on file/mmap.

mod context;
mod cost;
mod error;
mod fault;
mod file;
mod page;
mod pool;
mod stats;
mod stream;
mod tracker;

pub use context::QueryContext;
pub use cost::{CostModel, IoSnapshot, PAGE_SIZE};
pub use error::{StoreError, StoreErrorKind, StoreResult};
pub use fault::{Fault, FaultInjectingPageStore, FaultPlan};
pub use file::FilePageStore;
pub use page::{Backend, InMemoryPageStore, PageKey, PageStore, StoreId};
pub use pool::{BufferPool, PinGuard, PoolStats, SHARD_THRESHOLD};
pub use stats::QueryStats;
pub use stream::{
    fnv1a, free_stream, PageStreamReader, PageStreamWriter, StreamHandle, STREAM_PAYLOAD,
};
pub use tracker::{CacheCounts, IoTracker, TrackerSnapshot};

/// Number of pages needed to hold `bytes` bytes.
#[inline]
pub fn pages_for(bytes: usize) -> u64 {
    bytes.div_ceil(PAGE_SIZE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }
}
