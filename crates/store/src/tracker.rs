//! Per-query counters, safe to share across worker threads.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cost::IoSnapshot;

/// Buffer-pool activity attributable to one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounts {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheCounts {
    /// Total page lookups (`hits + misses`).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

impl std::ops::Add for CacheCounts {
    type Output = CacheCounts;
    fn add(self, o: CacheCounts) -> CacheCounts {
        CacheCounts {
            hits: self.hits + o.hits,
            misses: self.misses + o.misses,
            evictions: self.evictions + o.evictions,
        }
    }
}

/// Thread-safe counters for one query (or one workload when shared).
/// The buffer pool records cache activity here; access methods record
/// bytes and algorithmic counters.
#[derive(Debug, Default)]
pub struct IoTracker {
    pages: AtomicU64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    distance_evals: AtomicU64,
    candidates: AtomicU64,
    refinements: AtomicU64,
    pruned: AtomicU64,
    filter_steps: AtomicU64,
    refinements_saved: AtomicU64,
    f32_prefilter: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    epoch_pins: AtomicU64,
}

impl IoTracker {
    pub fn new() -> Self {
        IoTracker::default()
    }

    /// Charge `n` page accesses to the cost model (called by the
    /// buffer pool on misses).
    #[inline]
    pub fn record_pages(&self, n: u64) {
        self.pages.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` bytes read to the cost model.
    #[inline]
    pub fn record_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` distance-function evaluations (index CPU work).
    #[inline]
    pub fn count_distance_evals(&self, n: u64) {
        self.distance_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` objects surviving the filter step (or examined, for
    /// scans).
    #[inline]
    pub fn count_candidates(&self, n: u64) {
        self.candidates.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` exact (expensive) distance refinements.
    #[inline]
    pub fn count_refinements(&self, n: u64) {
        self.refinements.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` refinements aborted early by the bounded matching
    /// kernel (a subset of `refinements`: every pruned evaluation is
    /// still counted as a refinement, it just stopped before the full
    /// `O(k³)` solve).
    #[inline]
    pub fn count_pruned(&self, n: u64) {
        self.pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` candidates drawn from an incremental candidate stream
    /// (one ranking step of the filter's access path per candidate).
    #[inline]
    pub fn count_filter_steps(&self, n: u64) {
        self.filter_steps.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` stream candidates dismissed by their filter lower
    /// bound alone — pulled from the stream but never handed to the
    /// exact `dist_mm` kernel (unlike `pruned`, which counts kernel
    /// runs aborted mid-solve).
    #[inline]
    pub fn count_refinements_saved(&self, n: u64) {
        self.refinements_saved.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` refinements dismissed by the `f32` filter-precision
    /// matching kernel alone — the exact `f64` solve never ran. A subset
    /// of `pruned` (an f32-stage prune is still a pruned refinement; this
    /// counter records which stage decided it).
    #[inline]
    pub fn count_f32_prefilter(&self, n: u64) {
        self.f32_prefilter.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` objects inserted into a dynamic index.
    #[inline]
    pub fn count_inserts(&self, n: u64) {
        self.inserts.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` objects deleted (tombstoned) from a dynamic index.
    #[inline]
    pub fn count_deletes(&self, n: u64) {
        self.deletes.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` epoch-snapshot pins taken by readers of a dynamic
    /// index (one per query that latches a consistent snapshot).
    #[inline]
    pub fn count_epoch_pins(&self, n: u64) {
        self.epoch_pins.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot {
            io: IoSnapshot {
                pages: self.pages.load(Ordering::Relaxed),
                bytes: self.bytes.load(Ordering::Relaxed),
            },
            cache: CacheCounts {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
            },
            distance_evals: self.distance_evals.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            refinements: self.refinements.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            filter_steps: self.filter_steps.load(Ordering::Relaxed),
            refinements_saved: self.refinements_saved.load(Ordering::Relaxed),
            f32_prefilter: self.f32_prefilter.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            epoch_pins: self.epoch_pins.load(Ordering::Relaxed),
        }
    }

    /// Debug-only check of the cross-counter identities the query
    /// engine maintains: every pruned evaluation is a refinement, and
    /// on streaming paths each candidate pulled from the filter stream
    /// is either refined or dismissed by its lower bound, so
    /// `filter_steps = refinements + refinements_saved`. (Batch filter
    /// paths never pull from a stream and leave `filter_steps` at 0.)
    pub fn debug_check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            let s = self.snapshot();
            debug_assert!(
                s.pruned <= s.refinements,
                "pruned ({}) must be a subset of refinements ({})",
                s.pruned,
                s.refinements,
            );
            debug_assert!(
                s.filter_steps == 0 || s.filter_steps == s.refinements + s.refinements_saved,
                "filter_steps ({}) != refinements ({}) + refinements_saved ({})",
                s.filter_steps,
                s.refinements,
                s.refinements_saved,
            );
            debug_assert!(
                s.f32_prefilter <= s.pruned,
                "f32_prefilter ({}) must be a subset of pruned ({})",
                s.f32_prefilter,
                s.pruned,
            );
        }
    }

    pub fn reset(&self) {
        self.pages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.distance_evals.store(0, Ordering::Relaxed);
        self.candidates.store(0, Ordering::Relaxed);
        self.refinements.store(0, Ordering::Relaxed);
        self.pruned.store(0, Ordering::Relaxed);
        self.filter_steps.store(0, Ordering::Relaxed);
        self.refinements_saved.store(0, Ordering::Relaxed);
        self.f32_prefilter.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.epoch_pins.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of all tracker counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackerSnapshot {
    pub io: IoSnapshot,
    pub cache: CacheCounts,
    pub distance_evals: u64,
    pub candidates: u64,
    pub refinements: u64,
    /// Refinements aborted early under a k-NN / range bound.
    pub pruned: u64,
    /// Candidates pulled from an incremental candidate stream.
    pub filter_steps: u64,
    /// Stream candidates dismissed by the filter bound without an exact
    /// refinement.
    pub refinements_saved: u64,
    /// Refinements dismissed by the `f32` filter-precision kernel alone
    /// (subset of `pruned`).
    pub f32_prefilter: u64,
    /// Objects inserted into a dynamic index.
    pub inserts: u64,
    /// Objects deleted (tombstoned) from a dynamic index.
    pub deletes: u64,
    /// Epoch-snapshot pins taken by readers of a dynamic index.
    pub epoch_pins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let t = IoTracker::new();
        t.record_pages(3);
        t.record_bytes(1000);
        t.record_hit();
        t.record_miss();
        t.record_miss();
        t.record_eviction();
        t.count_distance_evals(7);
        t.count_candidates(2);
        t.count_refinements(1);
        t.count_pruned(1);
        t.count_filter_steps(5);
        t.count_refinements_saved(4);
        t.count_f32_prefilter(1);
        t.count_inserts(6);
        t.count_deletes(3);
        t.count_epoch_pins(2);
        let s = t.snapshot();
        assert_eq!(s.io, IoSnapshot { pages: 3, bytes: 1000 });
        assert_eq!(s.cache, CacheCounts { hits: 1, misses: 2, evictions: 1 });
        assert_eq!(s.cache.accesses(), 3);
        assert_eq!((s.distance_evals, s.candidates, s.refinements, s.pruned), (7, 2, 1, 1));
        assert_eq!((s.filter_steps, s.refinements_saved, s.f32_prefilter), (5, 4, 1));
        assert_eq!((s.inserts, s.deletes, s.epoch_pins), (6, 3, 2));
        t.reset();
        assert_eq!(t.snapshot(), TrackerSnapshot::default());
    }

    #[test]
    fn invariants_accept_consistent_stream_counters() {
        let t = IoTracker::new();
        t.count_filter_steps(5);
        t.count_refinements(3);
        t.count_pruned(1);
        t.count_refinements_saved(2);
        t.debug_check_invariants();
        t.reset();
        // Batch paths: refinements without stream pulls are fine too.
        t.count_refinements(4);
        t.debug_check_invariants();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "filter_steps")]
    fn invariants_catch_half_threaded_stream_counters() {
        let t = IoTracker::new();
        t.count_filter_steps(3);
        t.count_refinements(1);
        t.debug_check_invariants();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "pruned")]
    fn invariants_catch_pruned_exceeding_refinements() {
        let t = IoTracker::new();
        t.count_pruned(2);
        t.count_refinements(1);
        t.debug_check_invariants();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "f32_prefilter")]
    fn invariants_catch_f32_prefilter_exceeding_pruned() {
        let t = IoTracker::new();
        t.count_refinements(2);
        t.count_pruned(1);
        t.count_f32_prefilter(2);
        t.debug_check_invariants();
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let t = IoTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        t.record_pages(1);
                        t.record_bytes(10);
                        t.record_hit();
                    }
                });
            }
        });
        let s = t.snapshot();
        assert_eq!(s.io, IoSnapshot { pages: 4000, bytes: 40_000 });
        assert_eq!(s.cache.hits, 4000);
    }
}
