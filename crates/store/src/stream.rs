//! Checksummed, length-prefixed record streams over a [`PageStore`].
//!
//! A *stream* is a singly linked chain of pages, each carrying a small
//! header and up to [`STREAM_PAYLOAD`] payload bytes:
//!
//! ```text
//! offset  0  next page (u64 LE, u64::MAX = none)
//! offset  8  payload length (u16 LE, <= STREAM_PAYLOAD)
//! offset 10  flags (u16 LE, bit 0 = last page)
//! offset 12  FNV-1a checksum of the payload (u64 LE)
//! offset 20  payload
//! ```
//!
//! Streams are how structures serialize themselves into a page store:
//! the writer allocates pages one at a time (so freed pages are reused
//! page-granularly), and the reader verifies every page's length and
//! checksum. Because a truncated page file reads its torn tail as
//! zeros, a cut-off stream surfaces as a checksum/length error instead
//! of silently decoding garbage.

use std::io::{self, Read, Write};

use crate::cost::PAGE_SIZE;
use crate::error::StoreError;
use crate::page::PageStore;

/// Bytes of stream header per page.
pub const STREAM_HEADER: usize = 20;
/// Payload bytes per stream page.
pub const STREAM_PAYLOAD: usize = PAGE_SIZE - STREAM_HEADER;

const NO_PAGE: u64 = u64::MAX;
const FLAG_LAST: u16 = 1;

/// 64-bit FNV-1a over `data` (same parameters as `vsim-core`'s
/// persisted-artifact checksum).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Location and size of a finished stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHandle {
    /// First page of the chain.
    pub first: u64,
    /// Pages in the chain.
    pub pages: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// [`Write`] adapter that spills into a chain of stream pages.
/// Call [`finish`](Self::finish) to seal the last page and get the
/// stream's location; dropping without finishing leaks the chain.
pub struct PageStreamWriter<'a> {
    store: &'a dyn PageStore,
    /// A filled page waiting for its successor's number.
    pending: Option<(u64, Vec<u8>)>,
    first: Option<u64>,
    pages: u64,
    bytes: u64,
    buf: Vec<u8>,
}

impl<'a> PageStreamWriter<'a> {
    pub fn new(store: &'a dyn PageStore) -> Self {
        PageStreamWriter {
            store,
            pending: None,
            first: None,
            pages: 0,
            bytes: 0,
            buf: Vec::with_capacity(STREAM_PAYLOAD),
        }
    }

    /// Move the full buffer into `pending`, flushing the previously
    /// pending page now that its `next` pointer is known.
    fn seal_page(&mut self) -> io::Result<()> {
        let page = self.store.allocate(1)?;
        self.first.get_or_insert(page);
        self.pages += 1;
        let payload = std::mem::replace(&mut self.buf, Vec::with_capacity(STREAM_PAYLOAD));
        if let Some((prev_page, prev_payload)) = self.pending.replace((page, payload)) {
            write_stream_page(self.store, prev_page, page, 0, &prev_payload)?;
        }
        Ok(())
    }

    /// Seal the stream and return where it lives.
    pub fn finish(mut self) -> io::Result<StreamHandle> {
        // Always seal, so even an empty stream occupies one page and
        // has a well-defined first page.
        if self.pending.is_none() || !self.buf.is_empty() {
            self.seal_page()?;
        }
        // seal_page always leaves a pending page and records the first
        // page of the chain; a missing one means the writer itself is
        // broken, which is reported rather than unwrapped.
        let Some((page, payload)) = self.pending.take() else {
            return Err(io::Error::other("stream writer sealed no page"));
        };
        write_stream_page(self.store, page, NO_PAGE, FLAG_LAST, &payload)?;
        let first = self.first.unwrap_or(page);
        Ok(StreamHandle { first, pages: self.pages, bytes: self.bytes })
    }
}

impl Write for PageStreamWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = STREAM_PAYLOAD - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == STREAM_PAYLOAD {
                self.seal_page()?;
            }
        }
        self.bytes += data.len() as u64;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn write_stream_page(
    store: &dyn PageStore,
    page: u64,
    next: u64,
    flags: u16,
    payload: &[u8],
) -> io::Result<()> {
    let mut image = Vec::with_capacity(STREAM_HEADER + payload.len());
    image.extend_from_slice(&next.to_le_bytes());
    image.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    image.extend_from_slice(&flags.to_le_bytes());
    image.extend_from_slice(&fnv1a(payload).to_le_bytes());
    image.extend_from_slice(payload);
    store.write_page(page, &image)?;
    Ok(())
}

/// One decoded stream page.
struct StreamPage {
    next: Option<u64>,
    payload: Vec<u8>,
}

/// Checksum-failed pages are re-read this many extra times before the
/// corruption is declared permanent — a transient fault (a bad transfer
/// rather than bad media) heals on retry.
const READ_RETRIES: usize = 2;

/// Little-endian field readers over the page image (always a full
/// [`PAGE_SIZE`] buffer, so the constant offsets cannot slice out of
/// bounds).
fn le_u64(buf: &[u8], offset: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&buf[offset..offset + 8]);
    u64::from_le_bytes(v)
}

fn le_u16(buf: &[u8], offset: usize) -> u16 {
    let mut v = [0u8; 2];
    v.copy_from_slice(&buf[offset..offset + 2]);
    u16::from_le_bytes(v)
}

fn decode_stream_page(store: &dyn PageStore, page: u64) -> io::Result<StreamPage> {
    let mut attempt = 0;
    loop {
        match decode_stream_page_once(store, page) {
            Err(e) if attempt < READ_RETRIES && is_checksum_mismatch(&e) => attempt += 1,
            result => return result,
        }
    }
}

fn is_checksum_mismatch(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|r| {
        matches!(r.downcast_ref::<StoreError>(), Some(StoreError::Corruption { .. }))
    })
}

fn decode_stream_page_once(store: &dyn PageStore, page: u64) -> io::Result<StreamPage> {
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    if page >= store.page_count() {
        return Err(bad(format!("stream page {page} out of bounds (truncated page file?)")));
    }
    let mut image = vec![0u8; PAGE_SIZE];
    store.read_into(page, &mut image)?;
    let next = le_u64(&image, 0);
    let len = le_u16(&image, 8) as usize;
    let flags = le_u16(&image, 10);
    let checksum = le_u64(&image, 12);
    if len > STREAM_PAYLOAD {
        return Err(bad(format!("stream page {page} has impossible length {len}")));
    }
    let last = flags & FLAG_LAST != 0;
    if last != (next == NO_PAGE) {
        return Err(bad(format!("stream page {page} has inconsistent tail marker")));
    }
    let payload = image[STREAM_HEADER..STREAM_HEADER + len].to_vec();
    let found = fnv1a(&payload);
    if found != checksum {
        return Err(StoreError::Corruption { page, expected: checksum, found }.into());
    }
    Ok(StreamPage { next: (!last).then_some(next), payload })
}

/// [`Read`] adapter over a stream chain, verifying every page.
pub struct PageStreamReader<'a> {
    store: &'a dyn PageStore,
    next: Option<u64>,
    current: Vec<u8>,
    pos: usize,
    pages_read: u64,
}

impl std::fmt::Debug for PageStreamReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStreamReader")
            .field("next", &self.next)
            .field("pos", &self.pos)
            .field("pages_read", &self.pages_read)
            .finish_non_exhaustive()
    }
}

impl<'a> PageStreamReader<'a> {
    /// Open the stream starting at `first`; the first page is read and
    /// verified eagerly so corruption fails fast.
    pub fn open(store: &'a dyn PageStore, first: u64) -> io::Result<Self> {
        let mut reader = PageStreamReader {
            store,
            next: Some(first),
            current: Vec::new(),
            pos: 0,
            pages_read: 0,
        };
        reader.advance()?;
        Ok(reader)
    }

    fn advance(&mut self) -> io::Result<bool> {
        let Some(page) = self.next else {
            return Ok(false);
        };
        // A corrupted next-pointer cycle would otherwise loop forever.
        if self.pages_read > self.store.page_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream chain longer than the page file (cycle?)",
            ));
        }
        let decoded = decode_stream_page(self.store, page)?;
        self.next = decoded.next;
        self.current = decoded.payload;
        self.pos = 0;
        self.pages_read += 1;
        Ok(true)
    }
}

impl Read for PageStreamReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            let avail = self.current.len() - self.pos;
            if avail > 0 {
                let take = avail.min(out.len());
                out[..take].copy_from_slice(&self.current[self.pos..self.pos + take]);
                self.pos += take;
                return Ok(take);
            }
            if !self.advance()? {
                return Ok(0);
            }
        }
    }
}

/// Walk the chain starting at `first` and free every page; returns the
/// number of pages freed. Verifies pages while walking, so a corrupted
/// chain is reported rather than freeing unrelated pages.
pub fn free_stream(store: &dyn PageStore, first: u64) -> io::Result<u64> {
    let mut next = Some(first);
    let mut freed = 0;
    while let Some(page) = next {
        if freed >= store.page_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream chain longer than the page file (cycle?)",
            ));
        }
        next = decode_stream_page(store, page)?.next;
        store.free(page, 1)?;
        freed += 1;
    }
    Ok(freed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::InMemoryPageStore;

    fn round_trip(len: usize) {
        let store = InMemoryPageStore::new();
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
        let mut w = PageStreamWriter::new(&store);
        w.write_all(&data).unwrap();
        let handle = w.finish().unwrap();
        assert_eq!(handle.bytes, len as u64);
        assert_eq!(handle.pages, (len.div_ceil(STREAM_PAYLOAD) as u64).max(1));
        let mut r = PageStreamReader::open(&store, handle.first).unwrap();
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, data, "round trip of {len} bytes");
    }

    #[test]
    fn round_trips_across_page_boundaries() {
        for len in
            [0, 1, STREAM_PAYLOAD - 1, STREAM_PAYLOAD, STREAM_PAYLOAD + 1, 3 * STREAM_PAYLOAD + 17]
        {
            round_trip(len);
        }
    }

    #[test]
    fn corrupted_page_is_detected() {
        let store = InMemoryPageStore::new();
        let mut w = PageStreamWriter::new(&store);
        w.write_all(&vec![5u8; 2 * STREAM_PAYLOAD]).unwrap();
        let handle = w.finish().unwrap();
        // Corrupt the second page's payload, keeping its header intact.
        let mut image = vec![0u8; PAGE_SIZE];
        let second = handle.first + 1;
        store.read_into(second, &mut image).unwrap();
        image[STREAM_HEADER + 10] ^= 0xff;
        store.write_page(second, &image).unwrap();
        let mut r = PageStreamReader::open(&store, handle.first).unwrap();
        let err = r.read_to_end(&mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn truncated_tail_is_detected_not_ub() {
        let store = InMemoryPageStore::new();
        let mut w = PageStreamWriter::new(&store);
        w.write_all(&vec![9u8; 2 * STREAM_PAYLOAD + 5]).unwrap();
        let handle = w.finish().unwrap();
        // Zero the last page: this is exactly what a torn file tail
        // reads as after reopen.
        store.free(handle.first + 2, 1).unwrap();
        let mut r = PageStreamReader::open(&store, handle.first).unwrap();
        let err = r.read_to_end(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn out_of_bounds_first_page_is_detected() {
        let store = InMemoryPageStore::new();
        let err = PageStreamReader::open(&store, 3).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn free_stream_releases_every_page() {
        let store = InMemoryPageStore::new();
        let mut w = PageStreamWriter::new(&store);
        w.write_all(&vec![1u8; 3 * STREAM_PAYLOAD]).unwrap();
        let handle = w.finish().unwrap();
        assert_eq!(free_stream(&store, handle.first).unwrap(), 3);
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
