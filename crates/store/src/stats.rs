//! Per-query cost accounting, mirroring Table 2's columns.

use std::time::Duration;

use crate::cost::{CostModel, IoSnapshot};
use crate::error::StoreErrorKind;
use crate::tracker::{CacheCounts, TrackerSnapshot};

/// Costs of one similarity query (or a sum over a workload).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Measured wall-clock CPU time of the query.
    pub cpu: Duration,
    /// Simulated I/O charged by the cost model (pages = buffer-pool
    /// misses; hits are free).
    pub io: IoSnapshot,
    /// Buffer-pool activity attributable to this query.
    pub cache: CacheCounts,
    /// Objects surviving the filter step (for filter/refine paths) or
    /// examined (for scans).
    pub candidates: u64,
    /// Exact (expensive) distance computations performed.
    pub refinements: u64,
    /// Refinements aborted early by the bounded matching kernel (a
    /// subset of `refinements`).
    pub pruned: u64,
    /// Candidates pulled from an incremental candidate stream (one
    /// filter ranking step per candidate; the multi-step engine's
    /// measure of how deep into the ranking a query had to look).
    pub filter_steps: u64,
    /// Stream candidates dismissed by the filter lower bound alone —
    /// pulled but never refined with the exact distance.
    pub refinements_saved: u64,
    /// Refinements dismissed by the `f32` filter-precision matching
    /// kernel alone — the exact `f64` solve never ran (a subset of
    /// `pruned`).
    pub f32_prefilter: u64,
    /// Objects inserted into a dynamic index during this operation.
    pub inserts: u64,
    /// Objects deleted (tombstoned) from a dynamic index.
    pub deletes: u64,
    /// Epoch-snapshot pins taken by readers of a dynamic index (one per
    /// query that latched a consistent snapshot before filtering).
    pub epoch_pins: u64,
    /// Index-level distance-function evaluations.
    pub distance_evals: u64,
    /// Why this query failed, if it did. A failed query still reports
    /// the costs it incurred before the error; batch runners record the
    /// kind here instead of aborting the whole workload.
    pub error: Option<StoreErrorKind>,
}

impl QueryStats {
    pub(crate) fn from_snapshot(cpu: Duration, snap: TrackerSnapshot) -> Self {
        QueryStats {
            cpu,
            io: snap.io,
            cache: snap.cache,
            candidates: snap.candidates,
            refinements: snap.refinements,
            pruned: snap.pruned,
            filter_steps: snap.filter_steps,
            refinements_saved: snap.refinements_saved,
            f32_prefilter: snap.f32_prefilter,
            inserts: snap.inserts,
            deletes: snap.deletes,
            epoch_pins: snap.epoch_pins,
            distance_evals: snap.distance_evals,
            error: None,
        }
    }

    /// Simulated I/O time in seconds under the given cost model.
    pub fn io_seconds(&self, cm: &CostModel) -> f64 {
        cm.seconds(self.io)
    }

    /// CPU + simulated I/O, the paper's "total time".
    pub fn total_seconds(&self, cm: &CostModel) -> f64 {
        self.cpu.as_secs_f64() + self.io_seconds(cm)
    }

    /// Accumulate another query's stats (for averaging over workloads).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.cpu += other.cpu;
        self.io = self.io + other.io;
        self.cache = self.cache + other.cache;
        self.candidates += other.candidates;
        self.refinements += other.refinements;
        self.pruned += other.pruned;
        self.filter_steps += other.filter_steps;
        self.refinements_saved += other.refinements_saved;
        self.f32_prefilter += other.f32_prefilter;
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.epoch_pins += other.epoch_pins;
        self.distance_evals += other.distance_evals;
        self.error = self.error.or(other.error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_cpu_and_io() {
        let s = QueryStats {
            cpu: Duration::from_millis(100),
            io: IoSnapshot { pages: 10, bytes: 0 },
            ..Default::default()
        };
        let cm = CostModel::default();
        assert!((s.io_seconds(&cm) - 0.08).abs() < 1e-12);
        assert!((s.total_seconds(&cm) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = QueryStats {
            cpu: Duration::from_millis(5),
            io: IoSnapshot { pages: 1, bytes: 10 },
            cache: CacheCounts { hits: 3, misses: 1, evictions: 0 },
            candidates: 2,
            refinements: 1,
            pruned: 1,
            filter_steps: 3,
            refinements_saved: 2,
            f32_prefilter: 1,
            inserts: 4,
            deletes: 2,
            epoch_pins: 1,
            distance_evals: 9,
            error: None,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.cpu, Duration::from_millis(10));
        assert_eq!(a.io.pages, 2);
        assert_eq!(a.cache.hits, 6);
        assert_eq!(a.candidates, 4);
        assert_eq!(a.pruned, 2);
        assert_eq!(a.filter_steps, 6);
        assert_eq!(a.refinements_saved, 4);
        assert_eq!(a.f32_prefilter, 2);
        assert_eq!((a.inserts, a.deletes, a.epoch_pins), (8, 4, 2));
        assert_eq!(a.distance_evals, 18);
    }

    #[test]
    fn accumulate_keeps_the_first_error() {
        let mut a = QueryStats::default();
        assert_eq!(a.error, None);
        a.accumulate(&QueryStats { error: Some(StoreErrorKind::Corruption), ..Default::default() });
        a.accumulate(&QueryStats { error: Some(StoreErrorKind::Io), ..Default::default() });
        assert_eq!(a.error, Some(StoreErrorKind::Corruption), "first error wins");
    }
}
