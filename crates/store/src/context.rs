//! Per-query execution context: which buffer pool to read through,
//! and where to record costs.

use std::sync::Arc;
use std::time::Duration;

use crate::error::StoreResult;
use crate::page::PageStore;
use crate::pool::{BufferPool, PinGuard};
use crate::stats::QueryStats;
use crate::tracker::IoTracker;
use crate::StoreId;

/// Threaded through every range/k-NN call. One context per query gives
/// per-query stats; contexts are cheap (the pool is shared via `Arc`).
#[derive(Debug)]
pub struct QueryContext {
    pool: Arc<BufferPool>,
    tracker: IoTracker,
}

impl QueryContext {
    /// Context with a fresh unbounded pool, private to this query.
    /// Every first touch of a page is a charged miss — the paper's
    /// cold-cache accounting.
    pub fn ephemeral() -> Self {
        QueryContext { pool: BufferPool::unbounded(), tracker: IoTracker::new() }
    }

    /// Context reading through a shared (possibly warm) pool.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        QueryContext { pool, tracker: IoTracker::new() }
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn tracker(&self) -> &IoTracker {
        &self.tracker
    }

    /// Read `pages` consecutive pages through the pool; returns the
    /// number of misses (charged to this query).
    pub fn access(&self, store: StoreId, first: u64, pages: u64) -> u64 {
        self.pool.access(store, first, pages, &self.tracker)
    }

    /// Read and pin one page; it stays resident until the guard drops.
    pub fn pin(&self, store: StoreId, page: u64) -> PinGuard<'_> {
        self.pool.pin(store, page, &self.tracker)
    }

    /// Read one page's *contents* through the pool, charged exactly
    /// like a one-page [`access`](Self::access). Returns the page image
    /// and the number of charged misses (0 or 1), so access methods can
    /// keep byte charges tied to misses.
    pub fn load(&self, store: &dyn PageStore, page: u64) -> StoreResult<(Arc<[u8]>, u64)> {
        self.pool.load(store, page, &self.tracker)
    }

    /// Drop a page's cached contents so the next [`load`](Self::load)
    /// re-reads it — see [`BufferPool::invalidate`].
    pub fn invalidate(&self, store: StoreId, page: u64) -> bool {
        self.pool.invalidate(store, page)
    }

    /// Charge `n` bytes read to this query.
    pub fn record_bytes(&self, n: u64) {
        self.tracker.record_bytes(n);
    }

    pub fn count_distance_evals(&self, n: u64) {
        self.tracker.count_distance_evals(n);
    }

    pub fn count_candidates(&self, n: u64) {
        self.tracker.count_candidates(n);
    }

    pub fn count_refinements(&self, n: u64) {
        self.tracker.count_refinements(n);
    }

    /// Count `n` refinements aborted early by the bounded kernel.
    pub fn count_pruned(&self, n: u64) {
        self.tracker.count_pruned(n);
    }

    /// Count `n` candidates pulled from an incremental candidate stream.
    pub fn count_filter_steps(&self, n: u64) {
        self.tracker.count_filter_steps(n);
    }

    /// Count `n` stream candidates dismissed by the filter bound alone.
    pub fn count_refinements_saved(&self, n: u64) {
        self.tracker.count_refinements_saved(n);
    }

    /// Count `n` refinements dismissed by the `f32` filter-precision
    /// kernel alone (subset of `pruned`).
    pub fn count_f32_prefilter(&self, n: u64) {
        self.tracker.count_f32_prefilter(n);
    }

    /// Count `n` objects inserted into a dynamic index.
    pub fn count_inserts(&self, n: u64) {
        self.tracker.count_inserts(n);
    }

    /// Count `n` objects deleted (tombstoned) from a dynamic index.
    pub fn count_deletes(&self, n: u64) {
        self.tracker.count_deletes(n);
    }

    /// Count `n` epoch-snapshot pins taken by dynamic-index readers.
    pub fn count_epoch_pins(&self, n: u64) {
        self.tracker.count_epoch_pins(n);
    }

    /// Freeze this context's counters into per-query stats.
    pub fn stats(&self, cpu: Duration) -> QueryStats {
        self.tracker.debug_check_invariants();
        QueryStats::from_snapshot(cpu, self.tracker.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{InMemoryPageStore, PageStore};

    #[test]
    fn ephemeral_contexts_are_independent() {
        let store = InMemoryPageStore::new();
        let a = QueryContext::ephemeral();
        let b = QueryContext::ephemeral();
        assert_eq!(a.access(store.id(), 0, 2), 2);
        assert_eq!(b.access(store.id(), 0, 2), 2, "no sharing between ephemeral pools");
        assert_eq!(a.stats(Duration::ZERO).io.pages, 2);
    }

    #[test]
    fn shared_pool_contexts_split_stats() {
        let store = InMemoryPageStore::new();
        let pool = BufferPool::unbounded();
        let a = QueryContext::with_pool(Arc::clone(&pool));
        a.access(store.id(), 0, 3);
        let b = QueryContext::with_pool(Arc::clone(&pool));
        assert_eq!(b.access(store.id(), 0, 3), 0, "warm pool: all hits");
        let sa = a.stats(Duration::ZERO);
        let sb = b.stats(Duration::ZERO);
        assert_eq!(sa.io.pages, 3);
        assert_eq!(sb.io.pages, 0);
        assert_eq!(sb.cache.hits, 3);
    }

    #[test]
    fn load_charges_like_access() {
        let store = InMemoryPageStore::new();
        let page = store.allocate(1).unwrap();
        store.write_page(page, &[0x42u8; 16]).unwrap();
        let ctx = QueryContext::ephemeral();
        let (data, missed) = ctx.load(&store, page).unwrap();
        assert_eq!((missed, data[0]), (1, 0x42));
        let (_, missed) = ctx.load(&store, page).unwrap();
        assert_eq!(missed, 0);
        let s = ctx.stats(Duration::ZERO);
        assert_eq!(s.io.pages, 1);
        assert_eq!((s.cache.hits, s.cache.misses), (1, 1));
    }

    #[test]
    fn stats_capture_all_counters() {
        let ctx = QueryContext::ephemeral();
        ctx.record_bytes(100);
        ctx.count_distance_evals(4);
        ctx.count_candidates(2);
        ctx.count_refinements(1);
        let s = ctx.stats(Duration::from_millis(3));
        assert_eq!(s.io.bytes, 100);
        assert_eq!((s.distance_evals, s.candidates, s.refinements), (4, 2, 1));
        assert_eq!(s.cpu, Duration::from_millis(3));
    }
}
