//! Deterministic storage fault injection.
//!
//! [`FaultInjectingPageStore`] wraps any [`PageStore`] and perturbs its
//! operations according to a [`FaultPlan`]: a map from *operation
//! index* (the how-many-eth allocate/free/read/write/sync on this
//! wrapper) to a [`Fault`], plus an optional crash point after which
//! every operation fails with [`StoreError::Crashed`] — the moral
//! equivalent of pulling the power cord mid-save. Plans are plain data:
//! a given plan replays the exact same faults on the exact same
//! operation sequence, and [`FaultPlan::seeded`] derives a reproducible
//! plan from a seed through the vendored RNG. An empty plan makes the
//! wrapper a transparent pass-through (property-tested bit-identical to
//! the inner store), so harness code can keep one code path for both
//! faulty and clean runs.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::PAGE_SIZE;
use crate::error::{StoreError, StoreResult};
use crate::page::{Backend, PageStore, StoreId};

/// One injected misbehavior. Faults are matched to operations by index
/// only; a fault that cannot apply to the operation it lands on (e.g. a
/// torn write landing on a read) is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A read returns only the first `len` bytes; the tail reads as
    /// zeros, exactly like a torn file tail.
    ShortRead { len: usize },
    /// A write persists only the first `keep` bytes of the page image.
    TornWrite { keep: usize },
    /// One bit of the page image is flipped — on a read, in the bytes
    /// returned (transient; a re-read sees clean data); on a write, in
    /// the bytes persisted (permanent media corruption).
    BitFlip { bit: usize },
    /// The allocation or write fails with `ENOSPC`.
    Enospc,
    /// The sync fails (e.g. a lost write-back cache flush).
    SyncFail,
}

/// Deterministic schedule of [`Fault`]s keyed by operation index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Operation index from which everything fails with
    /// [`StoreError::Crashed`] (the op at this index included).
    crash_at: Option<u64>,
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults, no crash.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Plan that crashes at operation `op`: that operation and every
    /// later one fail with [`StoreError::Crashed`].
    pub fn crash_at(op: u64) -> Self {
        FaultPlan { crash_at: Some(op), faults: BTreeMap::new() }
    }

    /// Add `fault` at operation `op` (builder style).
    pub fn with_fault(mut self, op: u64, fault: Fault) -> Self {
        self.faults.insert(op, fault);
        self
    }

    /// Reproducible random plan: every operation index below `horizon`
    /// independently carries a fault with probability `rate`, drawn
    /// from the seeded (vendored) RNG. Same seed, same plan.
    pub fn seeded(seed: u64, horizon: u64, rate: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = BTreeMap::new();
        for op in 0..horizon {
            if !rng.gen_bool(rate) {
                continue;
            }
            let fault = match rng.gen_range(0..5u32) {
                0 => Fault::ShortRead { len: rng.gen_range(0..PAGE_SIZE) },
                1 => Fault::TornWrite { keep: rng.gen_range(0..PAGE_SIZE) },
                2 => Fault::BitFlip { bit: rng.gen_range(0..PAGE_SIZE * 8) },
                3 => Fault::Enospc,
                _ => Fault::SyncFail,
            };
            faults.insert(op, fault);
        }
        FaultPlan { crash_at: None, faults }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crash_at.is_none() && self.faults.is_empty()
    }

    fn fault_at(&self, op: u64) -> Option<Fault> {
        self.faults.get(&op).copied()
    }
}

fn enospc() -> StoreError {
    StoreError::Io(io::Error::from_raw_os_error(28)) // ENOSPC
}

fn sync_failed() -> StoreError {
    StoreError::Io(io::Error::other("injected sync failure"))
}

/// A [`PageStore`] wrapper that injects the faults of a [`FaultPlan`].
/// Identity (`id`, `page_count`, `backend`) passes through untouched,
/// so the wrapper is invisible to the buffer pool and cost model.
#[derive(Debug)]
pub struct FaultInjectingPageStore<S> {
    inner: S,
    plan: FaultPlan,
    op: AtomicU64,
}

impl<S: PageStore> FaultInjectingPageStore<S> {
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultInjectingPageStore { inner, plan, op: AtomicU64::new(0) }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the plan.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Operations executed (or rejected by the crash point) so far —
    /// the index the *next* operation will get.
    pub fn ops(&self) -> u64 {
        // ORDERING: SeqCst — the op counter is the crash-point clock,
        // and tests read it to predict exactly which operation fails.
        self.op.load(Ordering::SeqCst)
    }

    /// Claim the next operation index, honoring the crash point.
    fn next_op(&self) -> StoreResult<u64> {
        // ORDERING: SeqCst gives concurrent operations one total order,
        // so a crash plan fires exactly once at the configured index.
        let op = self.op.fetch_add(1, Ordering::SeqCst);
        if self.plan.crash_at.is_some_and(|n| op >= n) {
            return Err(StoreError::Crashed);
        }
        Ok(op)
    }
}

impl<S: PageStore> PageStore for FaultInjectingPageStore<S> {
    fn id(&self) -> StoreId {
        self.inner.id()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn backend(&self) -> Backend {
        self.inner.backend()
    }

    fn allocate(&self, pages: u64) -> StoreResult<u64> {
        let op = self.next_op()?;
        if self.plan.fault_at(op) == Some(Fault::Enospc) {
            return Err(enospc());
        }
        self.inner.allocate(pages)
    }

    fn free(&self, first: u64, pages: u64) -> StoreResult<()> {
        self.next_op()?;
        self.inner.free(first, pages)
    }

    fn read_into(&self, page: u64, buf: &mut [u8]) -> StoreResult<()> {
        let op = self.next_op()?;
        self.inner.read_into(page, buf)?;
        match self.plan.fault_at(op) {
            Some(Fault::ShortRead { len }) => {
                let len = len.min(PAGE_SIZE);
                buf[len..PAGE_SIZE].fill(0);
            }
            Some(Fault::BitFlip { bit }) => {
                let bit = bit % (PAGE_SIZE * 8);
                buf[bit / 8] ^= 1 << (bit % 8);
            }
            _ => {}
        }
        Ok(())
    }

    fn write_page(&self, page: u64, data: &[u8]) -> StoreResult<()> {
        let op = self.next_op()?;
        match self.plan.fault_at(op) {
            Some(Fault::Enospc) => Err(enospc()),
            Some(Fault::TornWrite { keep }) => {
                // Persist a prefix, then pad with zeros so the stale
                // tail of a previous page image cannot survive.
                let mut torn = vec![0u8; data.len()];
                let keep = keep.min(data.len());
                torn[..keep].copy_from_slice(&data[..keep]);
                self.inner.write_page(page, &torn)
            }
            Some(Fault::BitFlip { bit }) if !data.is_empty() => {
                let mut flipped = data.to_vec();
                let bit = bit % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_page(page, &flipped)
            }
            _ => self.inner.write_page(page, data),
        }
    }

    fn sync(&self) -> StoreResult<()> {
        let op = self.next_op()?;
        if self.plan.fault_at(op) == Some(Fault::SyncFail) {
            return Err(sync_failed());
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreErrorKind;
    use crate::page::InMemoryPageStore;

    fn faulty(plan: FaultPlan) -> FaultInjectingPageStore<InMemoryPageStore> {
        FaultInjectingPageStore::new(InMemoryPageStore::new(), plan)
    }

    #[test]
    fn empty_plan_passes_everything_through() {
        let store = faulty(FaultPlan::none());
        let first = store.allocate(2).unwrap();
        store.write_page(first, &[7u8; 100]).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(first, &mut buf).unwrap();
        assert_eq!(&buf[..100], &[7u8; 100][..]);
        store.free(first, 2).unwrap();
        store.sync().unwrap();
        assert_eq!(store.ops(), 5);
        assert_eq!(store.id(), store.inner().id());
        assert_eq!(store.page_count(), 2);
    }

    #[test]
    fn crash_at_op_fails_that_op_and_all_later_ones() {
        let store = faulty(FaultPlan::crash_at(2));
        let first = store.allocate(1).unwrap(); // op 0
        store.write_page(first, &[1u8; 4]).unwrap(); // op 1
        let mut buf = vec![0u8; PAGE_SIZE];
        for _ in 0..3 {
            match store.read_into(first, &mut buf) {
                Err(StoreError::Crashed) => {}
                other => panic!("expected Crashed, got {other:?}"),
            }
        }
        assert!(matches!(store.sync(), Err(StoreError::Crashed)));
        assert!(matches!(store.allocate(1), Err(StoreError::Crashed)));
    }

    #[test]
    fn short_read_zeroes_the_tail() {
        let store = faulty(FaultPlan::none().with_fault(2, Fault::ShortRead { len: 10 }));
        let first = store.allocate(1).unwrap(); // op 0
        store.write_page(first, &[9u8; 100]).unwrap(); // op 1
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(first, &mut buf).unwrap(); // op 2: short
        assert_eq!(&buf[..10], &[9u8; 10][..]);
        assert!(buf[10..].iter().all(|&b| b == 0), "short read tail is zeros");
        store.read_into(first, &mut buf).unwrap(); // op 3: clean again
        assert_eq!(&buf[..100], &[9u8; 100][..]);
    }

    #[test]
    fn torn_write_persists_only_a_prefix() {
        let store = faulty(FaultPlan::none().with_fault(1, Fault::TornWrite { keep: 3 }));
        let first = store.allocate(1).unwrap(); // op 0
        store.write_page(first, &[5u8; 8]).unwrap(); // op 1: torn
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(first, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[5, 5, 5, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn read_bit_flips_are_transient_write_bit_flips_are_permanent() {
        let store = faulty(
            FaultPlan::none()
                .with_fault(2, Fault::BitFlip { bit: 0 })
                .with_fault(5, Fault::BitFlip { bit: 0 }),
        );
        let first = store.allocate(1).unwrap(); // op 0
        store.write_page(first, &[0u8; 8]).unwrap(); // op 1
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(first, &mut buf).unwrap(); // op 2: flipped
        assert_eq!(buf[0], 1);
        store.read_into(first, &mut buf).unwrap(); // op 3: clean re-read
        assert_eq!(buf[0], 0, "read-side flip does not stick");
        store.write_page(first, &[0u8; 8]).unwrap(); // op 4
        store.write_page(first, &[0u8; 8]).unwrap(); // op 5: flipped write
        store.read_into(first, &mut buf).unwrap(); // op 6
        assert_eq!(buf[0], 1, "write-side flip persists");
    }

    #[test]
    fn enospc_and_sync_failures_are_io_errors() {
        let store =
            faulty(FaultPlan::none().with_fault(0, Fault::Enospc).with_fault(1, Fault::SyncFail));
        let err = store.allocate(1).unwrap_err();
        assert_eq!(err.kind(), StoreErrorKind::Io);
        assert!(err.to_string().to_lowercase().contains("space"), "got: {err}");
        let err = store.sync().unwrap_err();
        assert_eq!(err.kind(), StoreErrorKind::Io);
        // The store survives both failures.
        store.allocate(1).unwrap();
        store.sync().unwrap();
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 1000, 0.1);
        let b = FaultPlan::seeded(42, 1000, 0.1);
        assert_eq!(a.faults, b.faults);
        assert!(!a.is_empty(), "a 10% rate over 1000 ops injects something");
        let c = FaultPlan::seeded(43, 1000, 0.1);
        assert_ne!(a.faults, c.faults, "different seed, different plan");
        assert!(FaultPlan::seeded(7, 1000, 0.0).is_empty(), "zero rate injects nothing");
    }
}
