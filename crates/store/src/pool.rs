//! Lock-striped LRU buffer pool over [`PageKey`]s.
//!
//! Charging policy: a lookup that *hits* the pool is free; a *miss* is
//! charged as one page access to the query's [`IoTracker`] (the
//! paper's 8 ms). A pool with `capacity >= working set` therefore
//! issues zero simulated page costs on repeated queries, while a fresh
//! pool per query reproduces cold-cache accounting.
//!
//! # Sharding
//!
//! The pool is split into power-of-two *shards*, each an independently
//! locked LRU over a slice of the capacity; a page's shard is fixed by
//! a hash of its [`PageKey`], so concurrent queries touching different
//! pages rarely contend on the same mutex. Small pools (below
//! [`SHARD_THRESHOLD`] pages) collapse to a single shard so eviction
//! order stays exactly global LRU — the shard-local approximation only
//! kicks in at capacities where it is statistically irrelevant.
//! Per-shard [`CacheCounts`] totals are summed into [`PoolStats`], so
//! the counter-parity invariant (pool totals = Σ per-query trackers)
//! is preserved.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::cost::PAGE_SIZE;
use crate::error::StoreResult;
use crate::page::{PageKey, PageStore, StoreId};
use crate::tracker::{CacheCounts, IoTracker};

/// Below this capacity the pool uses one shard (exact global LRU).
pub const SHARD_THRESHOLD: usize = 128;

/// Shards used by bounded pools at or above [`SHARD_THRESHOLD`], and by
/// unbounded pools.
const DEFAULT_SHARDS: usize = 8;

#[derive(Debug)]
struct Frame {
    last_use: u64,
    pins: u32,
    /// Page contents, present once the page has been physically read
    /// through [`BufferPool::load`]. Simulated-I/O access paths never
    /// read contents, so their frames stay data-free.
    data: Option<Arc<[u8]>>,
}

#[derive(Debug, Default)]
struct Inner {
    frames: HashMap<PageKey, Frame>,
    tick: u64,
    totals: CacheCounts,
}

#[derive(Debug)]
struct Shard {
    capacity: Option<usize>,
    inner: Mutex<Inner>,
}

impl Shard {
    /// The pool is a pure cache: every frame is independently
    /// re-readable from its backing store, so state guarded by a
    /// poisoned lock is still safe to serve. Recover the guard instead
    /// of propagating the poison — one panicking query must not take
    /// the shared pool down with it.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared lock-striped LRU page cache with pin/unpin and a physical
/// read-through path.
#[derive(Debug)]
pub struct BufferPool {
    capacity: Option<usize>,
    shards: Vec<Shard>,
}

impl BufferPool {
    /// Pool holding at most `capacity` pages (`capacity >= 1`). Small
    /// pools get a single shard (exact LRU); larger ones are striped
    /// across [`DEFAULT_SHARDS`] locks.
    pub fn new(capacity: usize) -> Arc<Self> {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        let shards = if capacity < SHARD_THRESHOLD { 1 } else { DEFAULT_SHARDS };
        Self::with_shards(Some(capacity), shards)
    }

    /// Pool that never evicts (models "everything fits in memory").
    pub fn unbounded() -> Arc<Self> {
        Self::with_shards(None, DEFAULT_SHARDS)
    }

    /// Pool with an explicit shard count (rounded up to a power of
    /// two, clamped so every shard holds at least one page). The
    /// concurrency benchmark uses `with_shards(cap, 1)` as the
    /// single-lock baseline.
    pub fn with_shards(capacity: Option<usize>, shards: usize) -> Arc<Self> {
        let mut count = shards.max(1).next_power_of_two();
        if let Some(cap) = capacity {
            assert!(cap >= 1, "buffer pool capacity must be at least 1");
            while count > 1 && cap / count == 0 {
                count /= 2;
            }
        }
        let shards = (0..count)
            .map(|i| Shard {
                // Distribute the capacity exactly: cap = Σ shard caps.
                capacity: capacity.map(|cap| cap / count + usize::from(i < cap % count)),
                inner: Mutex::new(Inner::default()),
            })
            .collect();
        Arc::new(BufferPool { capacity, shards })
    }

    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: PageKey) -> &Shard {
        // Fibonacci hash over (store, page); high bits select the shard.
        let mixed =
            (key.store.raw() ^ key.page.rotate_left(29)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 56) as usize & (self.shards.len() - 1)]
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Lifetime hit/miss/eviction totals across all queries, summed
    /// over shards.
    pub fn stats(&self) -> PoolStats {
        let mut counts = CacheCounts::default();
        let mut resident = 0;
        for shard in &self.shards {
            let inner = shard.lock();
            counts = counts + inner.totals;
            resident += inner.frames.len();
        }
        PoolStats { counts, resident, capacity: self.capacity }
    }

    pub fn contains(&self, store: StoreId, page: u64) -> bool {
        let key = PageKey { store, page };
        self.shard(key).lock().frames.contains_key(&key)
    }

    /// Look up `pages` consecutive pages of `store` starting at
    /// `first`. Misses are charged to `tracker` (one page access each)
    /// and faulted in, evicting least-recently-used unpinned frames as
    /// needed; if every frame is pinned the page is read through
    /// without caching (still a charged miss). Returns the number of
    /// misses.
    pub fn access(&self, store: StoreId, first: u64, pages: u64, tracker: &IoTracker) -> u64 {
        let mut missed = 0;
        for page in first..first + pages {
            let key = PageKey { store, page };
            let shard = self.shard(key);
            let mut inner = shard.lock();
            if !inner.touch(key, 0, shard.capacity, tracker) {
                missed += 1;
            }
        }
        missed
    }

    /// Read one page's *contents* through the pool: charged exactly
    /// like a one-page [`access`](Self::access), but on a miss (or a
    /// hit on a frame that was only ever touched by simulated access)
    /// the page is physically read from `store` and cached in the
    /// frame. Returns the contents and the number of charged misses
    /// (0 or 1).
    // lint-allow: no-blocking-under-lock the read must happen under the shard lock so a fault is charged to exactly one access (fault-injection tests pin this); buffers stay because read_into needs a full page
    pub fn load(
        &self,
        store: &dyn PageStore,
        page: u64,
        tracker: &IoTracker,
    ) -> StoreResult<(Arc<[u8]>, u64)> {
        let key = PageKey { store: store.id(), page };
        let shard = self.shard(key);
        let mut inner = shard.lock();
        let missed = if inner.touch(key, 0, shard.capacity, tracker) { 0 } else { 1 };
        if let Some(data) = inner.frames.get(&key).and_then(|f| f.data.clone()) {
            return Ok((data, missed));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_into(page, &mut buf)?;
        let data: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
        // Cache the contents unless the frame was read through
        // uncached (pool full of pins).
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.data = Some(Arc::clone(&data));
        }
        Ok((data, missed))
    }

    /// Like [`access`](Self::access) for a single page, but the page is
    /// pinned on return: it cannot be evicted until the returned guard
    /// drops. Pinning is reentrant (pin counts nest). If the pool is
    /// full of other pinned pages, the page is read through and the
    /// guard is a no-op.
    pub fn pin<'a>(&'a self, store: StoreId, page: u64, tracker: &IoTracker) -> PinGuard<'a> {
        let key = PageKey { store, page };
        let shard = self.shard(key);
        let mut inner = shard.lock();
        let hit = inner.touch(key, 1, shard.capacity, tracker);
        // The page may not be resident (read-through); only a resident
        // pinned frame needs an unpin on drop.
        let pinned = inner.frames.get(&key).is_some_and(|f| f.pins > 0);
        PinGuard { pool: self, key: pinned.then_some(key), missed: !hit }
    }

    fn unpin(&self, key: PageKey) {
        let mut inner = self.shard(key).lock();
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Drop a page's cached contents so the next [`load`](Self::load)
    /// re-reads it from the backing store — the retry path when a
    /// loaded page fails checksum verification. An unpinned frame is
    /// removed outright; a pinned frame only loses its contents (its
    /// residency is owed to the pin guard). Counters are untouched:
    /// this is damage control, not an eviction. Returns whether a frame
    /// was found.
    pub fn invalidate(&self, store: StoreId, page: u64) -> bool {
        let key = PageKey { store, page };
        let mut inner = self.shard(key).lock();
        match inner.frames.get_mut(&key) {
            Some(frame) if frame.pins > 0 => {
                frame.data = None;
                true
            }
            Some(_) => {
                inner.frames.remove(&key);
                true
            }
            None => false,
        }
    }
}

impl Inner {
    /// Look up one page, faulting it in on miss; returns whether it was
    /// a hit. `extra_pins` is added to the frame's pin count.
    fn touch(
        &mut self,
        key: PageKey,
        extra_pins: u32,
        capacity: Option<usize>,
        tracker: &IoTracker,
    ) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(frame) = self.frames.get_mut(&key) {
            frame.last_use = tick;
            frame.pins += extra_pins;
            self.totals.hits += 1;
            tracker.record_hit();
            return true;
        }
        self.totals.misses += 1;
        tracker.record_miss();
        tracker.record_pages(1);
        if let Some(cap) = capacity {
            if self.frames.len() >= cap && !self.evict_lru(tracker) {
                // Every frame is pinned: read through without caching.
                return false;
            }
        }
        self.frames.insert(key, Frame { last_use: tick, pins: extra_pins, data: None });
        false
    }

    /// Evict the least-recently-used unpinned frame; false if all are
    /// pinned.
    fn evict_lru(&mut self, tracker: &IoTracker) -> bool {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_use)
            .map(|(k, _)| *k);
        match victim {
            Some(key) => {
                self.frames.remove(&key);
                self.totals.evictions += 1;
                tracker.record_eviction();
                true
            }
            None => false,
        }
    }
}

/// RAII pin: the page stays resident until this guard drops.
#[derive(Debug)]
pub struct PinGuard<'a> {
    pool: &'a BufferPool,
    key: Option<PageKey>,
    missed: bool,
}

impl PinGuard<'_> {
    /// Whether acquiring this pin faulted the page in (a charged miss).
    pub fn missed(&self) -> bool {
        self.missed
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key {
            self.pool.unpin(key);
        }
    }
}

/// Lifetime pool statistics.
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    pub counts: CacheCounts,
    pub resident: usize,
    pub capacity: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{InMemoryPageStore, PageStore};

    fn ids() -> (StoreId, IoTracker) {
        (InMemoryPageStore::new().id(), IoTracker::new())
    }

    #[test]
    fn repeat_access_hits_and_is_free() {
        let (store, t) = ids();
        let pool = BufferPool::unbounded();
        assert_eq!(pool.access(store, 0, 3, &t), 3);
        assert_eq!(pool.access(store, 0, 3, &t), 0);
        let s = t.snapshot();
        assert_eq!(s.io.pages, 3, "only misses are charged");
        assert_eq!(s.cache, CacheCounts { hits: 3, misses: 3, evictions: 0 });
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (store, t) = ids();
        let pool = BufferPool::new(2);
        pool.access(store, 0, 1, &t); // {0}
        pool.access(store, 1, 1, &t); // {0, 1}
        pool.access(store, 0, 1, &t); // touch 0 -> LRU is 1
        pool.access(store, 2, 1, &t); // evicts 1 -> {0, 2}
        assert!(pool.contains(store, 0));
        assert!(!pool.contains(store, 1));
        assert!(pool.contains(store, 2));
        assert_eq!(t.snapshot().cache.evictions, 1);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let (store, t) = ids();
        let pool = BufferPool::new(4);
        for page in 0..100 {
            pool.access(store, page, 1, &t);
            assert!(pool.resident() <= 4);
        }
        assert_eq!(t.snapshot().cache.evictions, 96);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (store, t) = ids();
        let pool = BufferPool::new(2);
        let _guard = pool.pin(store, 7, &t);
        for page in 0..50 {
            pool.access(store, page, 1, &t);
        }
        assert!(pool.contains(store, 7), "pinned page must not be evicted");
    }

    #[test]
    fn unpinned_page_becomes_evictable() {
        let (store, t) = ids();
        let pool = BufferPool::new(1);
        {
            let _guard = pool.pin(store, 7, &t);
            // Full of pinned pages: this read goes through uncached.
            assert_eq!(pool.access(store, 8, 1, &t), 1);
            assert!(!pool.contains(store, 8));
            assert!(pool.contains(store, 7));
        }
        pool.access(store, 9, 1, &t);
        assert!(!pool.contains(store, 7), "dropped guard releases the pin");
        assert!(pool.contains(store, 9));
    }

    #[test]
    fn nested_pins_release_in_order() {
        let (store, t) = ids();
        let pool = BufferPool::new(1);
        let a = pool.pin(store, 3, &t);
        let b = pool.pin(store, 3, &t);
        drop(a);
        pool.access(store, 4, 1, &t);
        assert!(pool.contains(store, 3), "still pinned by second guard");
        drop(b);
        pool.access(store, 5, 1, &t);
        assert!(!pool.contains(store, 3));
    }

    #[test]
    fn pin_reports_miss_then_hit() {
        let (store, t) = ids();
        let pool = BufferPool::unbounded();
        let a = pool.pin(store, 0, &t);
        assert!(a.missed());
        let b = pool.pin(store, 0, &t);
        assert!(!b.missed());
    }

    #[test]
    fn two_stores_do_not_collide() {
        let a = InMemoryPageStore::new();
        let b = InMemoryPageStore::new();
        let t = IoTracker::new();
        let pool = BufferPool::unbounded();
        pool.access(a.id(), 0, 1, &t);
        assert_eq!(pool.access(b.id(), 0, 1, &t), 1, "same page number, different store");
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn pool_totals_aggregate_across_trackers() {
        let (store, _) = ids();
        let pool = BufferPool::unbounded();
        let t1 = IoTracker::new();
        let t2 = IoTracker::new();
        pool.access(store, 0, 2, &t1);
        pool.access(store, 0, 2, &t2);
        let stats = pool.stats();
        assert_eq!(stats.counts, CacheCounts { hits: 2, misses: 2, evictions: 0 });
        assert_eq!(t1.snapshot().cache.misses, 2);
        assert_eq!(t2.snapshot().cache.hits, 2);
    }

    #[test]
    fn concurrent_access_totals_are_consistent() {
        let (store, _) = ids();
        let pool = BufferPool::new(8);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let t = IoTracker::new();
                    for i in 0..500u64 {
                        pool.access(store, (w * 37 + i * 13) % 64, 1, &t);
                    }
                    let s = t.snapshot().cache;
                    assert_eq!(s.accesses(), 500);
                });
            }
        });
        let totals = pool.stats().counts;
        assert_eq!(totals.accesses(), 2000);
        assert!(pool.resident() <= 8);
    }

    #[test]
    fn small_pools_are_single_shard_large_pools_are_striped() {
        assert_eq!(BufferPool::new(8).shard_count(), 1, "exact LRU below the threshold");
        assert_eq!(BufferPool::new(SHARD_THRESHOLD).shard_count(), DEFAULT_SHARDS);
        assert_eq!(BufferPool::unbounded().shard_count(), DEFAULT_SHARDS);
        assert_eq!(BufferPool::with_shards(Some(1024), 1).shard_count(), 1);
        assert_eq!(BufferPool::with_shards(None, 5).shard_count(), 8, "rounded to a power of two");
        assert_eq!(BufferPool::with_shards(Some(2), 8).shard_count(), 2, "clamped to capacity");
    }

    #[test]
    fn sharded_capacity_is_distributed_exactly() {
        let pool = BufferPool::with_shards(Some(130), 8);
        let per_shard: usize = pool.shards.iter().map(|s| s.capacity.unwrap()).sum();
        assert_eq!(per_shard, 130, "shard capacities sum to the pool capacity");
        let (store, t) = ids();
        for page in 0..1000 {
            pool.access(store, page, 1, &t);
        }
        assert!(pool.resident() <= 130);
        let s = pool.stats();
        assert_eq!(s.counts.misses, 1000);
        assert_eq!(s.counts.misses - s.counts.evictions, s.resident as u64);
    }

    #[test]
    fn sharded_totals_match_tracker_counts() {
        let store = InMemoryPageStore::new();
        let pool = BufferPool::with_shards(Some(256), 8);
        let t = IoTracker::new();
        for round in 0..3 {
            for page in 0..200 {
                pool.access(store.id(), page, 1, &t);
            }
            let s = pool.stats().counts;
            let q = t.snapshot().cache;
            assert_eq!(s, q, "pool totals equal the single query's counts (round {round})");
        }
    }

    #[test]
    fn load_reads_through_and_caches_contents() {
        let store = InMemoryPageStore::new();
        let page = store.allocate(1).unwrap();
        store.write_page(page, &[0x5au8; 64]).unwrap();
        let pool = BufferPool::unbounded();
        let t = IoTracker::new();
        let (cold, missed) = pool.load(&store, page, &t).unwrap();
        assert_eq!(missed, 1);
        assert_eq!(&cold[..64], &[0x5au8; 64][..]);
        assert_eq!(cold.len(), PAGE_SIZE);
        let (warm, missed) = pool.load(&store, page, &t).unwrap();
        assert_eq!(missed, 0, "second load is a free hit");
        assert_eq!(warm, cold);
        let s = t.snapshot();
        assert_eq!(s.io.pages, 1, "contents served from cache are not re-charged");
        assert_eq!(s.cache, CacheCounts { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn load_after_simulated_access_fills_in_contents() {
        let store = InMemoryPageStore::new();
        let page = store.allocate(1).unwrap();
        store.write_page(page, &[3u8; 10]).unwrap();
        let pool = BufferPool::unbounded();
        let t = IoTracker::new();
        // Simulated access faults the frame in without contents...
        assert_eq!(pool.access(store.id(), page, 1, &t), 1);
        // ...so the first load hits (no new charge) but still reads.
        let (data, missed) = pool.load(&store, page, &t).unwrap();
        assert_eq!(missed, 0);
        assert_eq!(&data[..10], &[3u8; 10][..]);
        assert_eq!(t.snapshot().io.pages, 1);
    }

    #[test]
    fn eviction_drops_cached_contents() {
        let store = InMemoryPageStore::new();
        let first = store.allocate(3).unwrap();
        for page in first..first + 3 {
            store.write_page(page, &[page as u8; 4]).unwrap();
        }
        let pool = BufferPool::new(1);
        let t = IoTracker::new();
        for page in first..first + 3 {
            let (data, missed) = pool.load(&store, page, &t).unwrap();
            assert_eq!(missed, 1, "capacity 1: every new page misses");
            assert_eq!(data[0], page as u8);
        }
        assert_eq!(pool.resident(), 1);
        assert_eq!(t.snapshot().cache.evictions, 2);
    }

    #[test]
    fn invalidate_forces_a_physical_reread() {
        let store = InMemoryPageStore::new();
        let page = store.allocate(1).unwrap();
        store.write_page(page, &[1u8; 8]).unwrap();
        let pool = BufferPool::unbounded();
        let t = IoTracker::new();
        let (before, _) = pool.load(&store, page, &t).unwrap();
        assert_eq!(before[0], 1);
        // Rewrite behind the pool's back: a plain load still serves the
        // stale cached image, an invalidated one re-reads.
        store.write_page(page, &[2u8; 8]).unwrap();
        let (stale, _) = pool.load(&store, page, &t).unwrap();
        assert_eq!(stale[0], 1, "cache still holds the old image");
        assert!(pool.invalidate(store.id(), page));
        assert!(!pool.contains(store.id(), page));
        let (fresh, _) = pool.load(&store, page, &t).unwrap();
        assert_eq!(fresh[0], 2, "invalidate dropped the cached image");
        assert!(!pool.invalidate(store.id(), 999), "unknown page reports false");
    }

    #[test]
    fn pinned_frames_survive_invalidate_but_lose_contents() {
        let store = InMemoryPageStore::new();
        let page = store.allocate(1).unwrap();
        store.write_page(page, &[3u8; 8]).unwrap();
        let pool = BufferPool::unbounded();
        let t = IoTracker::new();
        let _guard = pool.pin(store.id(), page, &t);
        pool.load(&store, page, &t).unwrap();
        assert!(pool.invalidate(store.id(), page));
        assert!(pool.contains(store.id(), page), "pinned frame stays resident");
        let (data, _) = pool.load(&store, page, &t).unwrap();
        assert_eq!(data[0], 3, "contents re-read after invalidation");
    }

    #[test]
    fn poisoned_shard_lock_is_recovered_not_propagated() {
        let (store, t) = ids();
        let pool = BufferPool::with_shards(Some(64), 1);
        pool.access(store, 0, 4, &t);
        // Poison the single shard's mutex by panicking while holding it.
        let res = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = pool.shards[0].inner.lock().unwrap();
                    panic!("poison the pool");
                })
                .join()
        });
        assert!(res.is_err(), "the poisoning thread panicked");
        // The pool keeps serving: lookups, loads, and stats all recover.
        assert_eq!(pool.access(store, 0, 4, &t), 0, "cached pages still hit");
        assert!(pool.stats().counts.accesses() >= 8);
        assert_eq!(pool.resident(), 4);
    }

    #[test]
    fn concurrent_loads_return_identical_contents() {
        let store = InMemoryPageStore::new();
        let first = store.allocate(16).unwrap();
        for page in first..first + 16 {
            store.write_page(page, &[page as u8; 32]).unwrap();
        }
        let pool = BufferPool::with_shards(Some(256), 8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (pool, store) = (&pool, &store);
                scope.spawn(move || {
                    let t = IoTracker::new();
                    for i in 0..200u64 {
                        let page = i % 16;
                        let (data, _) = pool.load(store, page, &t).unwrap();
                        assert_eq!(data[0], page as u8);
                    }
                });
            }
        });
        let s = pool.stats().counts;
        assert_eq!(s.accesses(), 800);
        assert_eq!(s.misses, 16, "each page faults exactly once across threads");
    }
}
