//! LRU buffer pool over [`PageKey`]s.
//!
//! Charging policy: a lookup that *hits* the pool is free; a *miss* is
//! charged as one page access to the query's [`IoTracker`] (the
//! paper's 8 ms). A pool with `capacity >= working set` therefore
//! issues zero simulated page costs on repeated queries, while a fresh
//! pool per query reproduces cold-cache accounting.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::page::{PageKey, StoreId};
use crate::tracker::{CacheCounts, IoTracker};

#[derive(Debug)]
struct Frame {
    last_use: u64,
    pins: u32,
}

#[derive(Debug, Default)]
struct Inner {
    frames: HashMap<PageKey, Frame>,
    tick: u64,
    totals: CacheCounts,
}

/// Shared LRU page cache with pin/unpin.
#[derive(Debug)]
pub struct BufferPool {
    capacity: Option<usize>,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Pool holding at most `capacity` pages (`capacity >= 1`).
    pub fn new(capacity: usize) -> Arc<Self> {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        Arc::new(BufferPool { capacity: Some(capacity), inner: Mutex::new(Inner::default()) })
    }

    /// Pool that never evicts (models "everything fits in memory").
    pub fn unbounded() -> Arc<Self> {
        Arc::new(BufferPool { capacity: None, inner: Mutex::new(Inner::default()) })
    }

    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    /// Lifetime hit/miss/eviction totals across all queries.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().unwrap();
        PoolStats { counts: inner.totals, resident: inner.frames.len(), capacity: self.capacity }
    }

    pub fn contains(&self, store: StoreId, page: u64) -> bool {
        self.inner.lock().unwrap().frames.contains_key(&PageKey { store, page })
    }

    /// Look up `pages` consecutive pages of `store` starting at
    /// `first`. Misses are charged to `tracker` (one page access each)
    /// and faulted in, evicting least-recently-used unpinned frames as
    /// needed; if every frame is pinned the page is read through
    /// without caching (still a charged miss). Returns the number of
    /// misses.
    pub fn access(&self, store: StoreId, first: u64, pages: u64, tracker: &IoTracker) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let mut missed = 0;
        for page in first..first + pages {
            if !inner.touch(PageKey { store, page }, 0, self.capacity, tracker) {
                missed += 1;
            }
        }
        missed
    }

    /// Like [`access`](Self::access) for a single page, but the page is
    /// pinned on return: it cannot be evicted until the returned guard
    /// drops. Pinning is reentrant (pin counts nest). If the pool is
    /// full of other pinned pages, the page is read through and the
    /// guard is a no-op.
    pub fn pin<'a>(&'a self, store: StoreId, page: u64, tracker: &IoTracker) -> PinGuard<'a> {
        let key = PageKey { store, page };
        let mut inner = self.inner.lock().unwrap();
        let hit = inner.touch(key, 1, self.capacity, tracker);
        // The page may not be resident (read-through); only a resident
        // pinned frame needs an unpin on drop.
        let pinned = inner.frames.get(&key).is_some_and(|f| f.pins > 0);
        PinGuard { pool: self, key: pinned.then_some(key), missed: !hit }
    }

    fn unpin(&self, key: PageKey) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

impl Inner {
    /// Look up one page, faulting it in on miss; returns whether it was
    /// a hit. `extra_pins` is added to the frame's pin count.
    fn touch(
        &mut self,
        key: PageKey,
        extra_pins: u32,
        capacity: Option<usize>,
        tracker: &IoTracker,
    ) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(frame) = self.frames.get_mut(&key) {
            frame.last_use = tick;
            frame.pins += extra_pins;
            self.totals.hits += 1;
            tracker.record_hit();
            return true;
        }
        self.totals.misses += 1;
        tracker.record_miss();
        tracker.record_pages(1);
        if let Some(cap) = capacity {
            if self.frames.len() >= cap && !self.evict_lru(tracker) {
                // Every frame is pinned: read through without caching.
                return false;
            }
        }
        self.frames.insert(key, Frame { last_use: tick, pins: extra_pins });
        false
    }

    /// Evict the least-recently-used unpinned frame; false if all are
    /// pinned.
    fn evict_lru(&mut self, tracker: &IoTracker) -> bool {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_use)
            .map(|(k, _)| *k);
        match victim {
            Some(key) => {
                self.frames.remove(&key);
                self.totals.evictions += 1;
                tracker.record_eviction();
                true
            }
            None => false,
        }
    }
}

/// RAII pin: the page stays resident until this guard drops.
#[derive(Debug)]
pub struct PinGuard<'a> {
    pool: &'a BufferPool,
    key: Option<PageKey>,
    missed: bool,
}

impl PinGuard<'_> {
    /// Whether acquiring this pin faulted the page in (a charged miss).
    pub fn missed(&self) -> bool {
        self.missed
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key {
            self.pool.unpin(key);
        }
    }
}

/// Lifetime pool statistics.
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    pub counts: CacheCounts,
    pub resident: usize,
    pub capacity: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{InMemoryPageStore, PageStore};

    fn ids() -> (StoreId, IoTracker) {
        (InMemoryPageStore::new().id(), IoTracker::new())
    }

    #[test]
    fn repeat_access_hits_and_is_free() {
        let (store, t) = ids();
        let pool = BufferPool::unbounded();
        assert_eq!(pool.access(store, 0, 3, &t), 3);
        assert_eq!(pool.access(store, 0, 3, &t), 0);
        let s = t.snapshot();
        assert_eq!(s.io.pages, 3, "only misses are charged");
        assert_eq!(s.cache, CacheCounts { hits: 3, misses: 3, evictions: 0 });
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (store, t) = ids();
        let pool = BufferPool::new(2);
        pool.access(store, 0, 1, &t); // {0}
        pool.access(store, 1, 1, &t); // {0, 1}
        pool.access(store, 0, 1, &t); // touch 0 -> LRU is 1
        pool.access(store, 2, 1, &t); // evicts 1 -> {0, 2}
        assert!(pool.contains(store, 0));
        assert!(!pool.contains(store, 1));
        assert!(pool.contains(store, 2));
        assert_eq!(t.snapshot().cache.evictions, 1);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let (store, t) = ids();
        let pool = BufferPool::new(4);
        for page in 0..100 {
            pool.access(store, page, 1, &t);
            assert!(pool.resident() <= 4);
        }
        assert_eq!(t.snapshot().cache.evictions, 96);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (store, t) = ids();
        let pool = BufferPool::new(2);
        let _guard = pool.pin(store, 7, &t);
        for page in 0..50 {
            pool.access(store, page, 1, &t);
        }
        assert!(pool.contains(store, 7), "pinned page must not be evicted");
    }

    #[test]
    fn unpinned_page_becomes_evictable() {
        let (store, t) = ids();
        let pool = BufferPool::new(1);
        {
            let _guard = pool.pin(store, 7, &t);
            // Full of pinned pages: this read goes through uncached.
            assert_eq!(pool.access(store, 8, 1, &t), 1);
            assert!(!pool.contains(store, 8));
            assert!(pool.contains(store, 7));
        }
        pool.access(store, 9, 1, &t);
        assert!(!pool.contains(store, 7), "dropped guard releases the pin");
        assert!(pool.contains(store, 9));
    }

    #[test]
    fn nested_pins_release_in_order() {
        let (store, t) = ids();
        let pool = BufferPool::new(1);
        let a = pool.pin(store, 3, &t);
        let b = pool.pin(store, 3, &t);
        drop(a);
        pool.access(store, 4, 1, &t);
        assert!(pool.contains(store, 3), "still pinned by second guard");
        drop(b);
        pool.access(store, 5, 1, &t);
        assert!(!pool.contains(store, 3));
    }

    #[test]
    fn pin_reports_miss_then_hit() {
        let (store, t) = ids();
        let pool = BufferPool::unbounded();
        let a = pool.pin(store, 0, &t);
        assert!(a.missed());
        let b = pool.pin(store, 0, &t);
        assert!(!b.missed());
    }

    #[test]
    fn two_stores_do_not_collide() {
        let a = InMemoryPageStore::new();
        let b = InMemoryPageStore::new();
        let t = IoTracker::new();
        let pool = BufferPool::unbounded();
        pool.access(a.id(), 0, 1, &t);
        assert_eq!(pool.access(b.id(), 0, 1, &t), 1, "same page number, different store");
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn pool_totals_aggregate_across_trackers() {
        let (store, _) = ids();
        let pool = BufferPool::unbounded();
        let t1 = IoTracker::new();
        let t2 = IoTracker::new();
        pool.access(store, 0, 2, &t1);
        pool.access(store, 0, 2, &t2);
        let stats = pool.stats();
        assert_eq!(stats.counts, CacheCounts { hits: 2, misses: 2, evictions: 0 });
        assert_eq!(t1.snapshot().cache.misses, 2);
        assert_eq!(t2.snapshot().cache.hits, 2);
    }

    #[test]
    fn concurrent_access_totals_are_consistent() {
        let (store, _) = ids();
        let pool = BufferPool::new(8);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let t = IoTracker::new();
                    for i in 0..500u64 {
                        pool.access(store, (w * 37 + i * 13) % 64, 1, &t);
                    }
                    let s = t.snapshot().cache;
                    assert_eq!(s.accesses(), 500);
                });
            }
        });
        let totals = pool.stats().counts;
        assert_eq!(totals.accesses(), 2000);
        assert!(pool.resident() <= 8);
    }
}
