//! Page identity and allocation.
//!
//! Every persistent structure (an index, the vector-set heap file)
//! owns a page store; the store hands out page numbers and a unique
//! [`StoreId`] so the shared [`BufferPool`](crate::BufferPool) can
//! cache pages from many structures without collisions. The actual
//! node/tuple payloads stay in the owning structure — the paper's
//! evaluation simulates I/O rather than performing it, so the store
//! tracks *which* pages exist, not their contents.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique identity of one page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreId(u64);

impl StoreId {
    fn fresh() -> Self {
        StoreId(NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Global identity of one page: which store, which page within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    pub store: StoreId,
    pub page: u64,
}

/// A source of pages that the buffer pool can cache.
pub trait PageStore: Send + Sync {
    /// Process-unique identity, used as the cache-key namespace.
    fn id(&self) -> StoreId;
    /// Number of pages allocated so far.
    fn page_count(&self) -> u64;
}

/// Page allocator for a main-memory structure. Thread-safe: allocation
/// uses an atomic bump pointer, so index nodes can allocate fresh page
/// spans (e.g. X-tree supernode growth) from behind a shared reference.
#[derive(Debug)]
pub struct InMemoryPageStore {
    id: StoreId,
    pages: AtomicU64,
}

impl InMemoryPageStore {
    pub fn new() -> Self {
        InMemoryPageStore { id: StoreId::fresh(), pages: AtomicU64::new(0) }
    }

    /// Allocate a fresh contiguous span of `pages` pages; returns the
    /// first page number of the span.
    pub fn allocate(&self, pages: u64) -> u64 {
        self.pages.fetch_add(pages, Ordering::Relaxed)
    }
}

impl Default for InMemoryPageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for InMemoryPageStore {
    fn id(&self) -> StoreId {
        self.id
    }

    fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_ids_are_unique() {
        let a = InMemoryPageStore::new();
        let b = InMemoryPageStore::new();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn allocation_is_contiguous_and_counted() {
        let s = InMemoryPageStore::new();
        assert_eq!(s.allocate(3), 0);
        assert_eq!(s.allocate(1), 3);
        assert_eq!(s.allocate(2), 4);
        assert_eq!(s.page_count(), 6);
    }

    #[test]
    fn concurrent_allocation_never_overlaps() {
        let s = InMemoryPageStore::new();
        let spans: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..100).map(|_| (s.allocate(2), 2)).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut firsts: Vec<u64> = spans.iter().map(|&(f, _)| f).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 400);
        assert_eq!(s.page_count(), 800);
    }
}
