//! Page identity, allocation, and page-granular contents.
//!
//! Every persistent structure (an index, the vector-set heap file)
//! owns a page store; the store hands out page numbers and a unique
//! [`StoreId`] so the shared [`BufferPool`](crate::BufferPool) can
//! cache pages from many structures without collisions. Since the
//! file-backed refactor a store also holds page *contents*: the
//! in-memory backend keeps written pages in a map (structures that only
//! simulate I/O never write any), while
//! [`FilePageStore`](crate::FilePageStore) puts them in a real page
//! file.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::cost::PAGE_SIZE;
use crate::error::StoreResult;

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique identity of one page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreId(u64);

impl StoreId {
    pub(crate) fn fresh() -> Self {
        StoreId(NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

/// Global identity of one page: which store, which page within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    pub store: StoreId,
    pub page: u64,
}

/// Which medium a page store reads from. Decides whether the cost model
/// *charges* the paper's simulated constants (memory) or estimates
/// *measured* device costs (file/mmap) — see
/// [`CostModel::for_backend`](crate::CostModel::for_backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Main-memory store; I/O is simulated and charged.
    Memory,
    /// Page file read through `pread`.
    File,
    /// Page file with a read-only memory mapping.
    Mmap,
}

impl Backend {
    /// Whether I/O on this backend is simulated (charged) rather than
    /// physically performed and measured.
    pub fn is_simulated(self) -> bool {
        matches!(self, Backend::Memory)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Memory => "memory",
            Backend::File => "file",
            Backend::Mmap => "mmap",
        })
    }
}

/// A source of pages that the buffer pool can cache: identity and
/// allocation plus page-granular read/write.
pub trait PageStore: Send + Sync {
    /// Process-unique identity, used as the cache-key namespace.
    fn id(&self) -> StoreId;
    /// Number of pages allocated so far (high-water mark).
    fn page_count(&self) -> u64;
    /// The medium this store reads from.
    fn backend(&self) -> Backend;
    /// Allocate a contiguous span of `pages` pages; returns the first
    /// page number of the span. Fails with
    /// [`StoreError::Full`](crate::StoreError::Full) when no run of
    /// that length exists in a bounded store.
    fn allocate(&self, pages: u64) -> StoreResult<u64>;
    /// Return a span to the store for reuse. Backends without reuse
    /// (the bump-allocating memory store) only drop the contents.
    fn free(&self, first: u64, pages: u64) -> StoreResult<()>;
    /// Read one page into `buf` (at least [`PAGE_SIZE`] bytes). Pages
    /// that were allocated but never written read as zeros.
    fn read_into(&self, page: u64, buf: &mut [u8]) -> StoreResult<()>;
    /// Write one page (`data.len() <= PAGE_SIZE`; a short write leaves
    /// the page tail unspecified — record layouts carry their lengths).
    fn write_page(&self, page: u64, data: &[u8]) -> StoreResult<()>;
    /// Persist store metadata (free map, header). No-op in memory.
    fn sync(&self) -> StoreResult<()>;
}

/// Page store for a main-memory structure. Thread-safe: allocation
/// uses an atomic bump pointer, so index nodes can allocate fresh page
/// spans (e.g. X-tree supernode growth) from behind a shared reference.
/// Contents are kept only for pages actually written — the simulated-I/O
/// access methods allocate spans for accounting and never write them.
#[derive(Debug)]
pub struct InMemoryPageStore {
    id: StoreId,
    pages: AtomicU64,
    data: Mutex<HashMap<u64, Box<[u8]>>>,
}

impl Default for InMemoryPageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryPageStore {
    pub fn new() -> Self {
        InMemoryPageStore {
            id: StoreId::fresh(),
            pages: AtomicU64::new(0),
            data: Mutex::new(HashMap::new()),
        }
    }

    /// The content map holds independent per-page entries, so a writer
    /// that panicked mid-operation cannot leave it torn; recover the
    /// guard instead of propagating the poison.
    fn contents(&self) -> MutexGuard<'_, HashMap<u64, Box<[u8]>>> {
        self.data.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl PageStore for InMemoryPageStore {
    fn id(&self) -> StoreId {
        self.id
    }

    fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    fn backend(&self) -> Backend {
        Backend::Memory
    }

    fn allocate(&self, pages: u64) -> StoreResult<u64> {
        Ok(self.pages.fetch_add(pages, Ordering::Relaxed))
    }

    /// The bump allocator never reuses page numbers; freeing only drops
    /// the stored contents.
    fn free(&self, first: u64, pages: u64) -> StoreResult<()> {
        let mut data = self.contents();
        for page in first..first + pages {
            data.remove(&page);
        }
        Ok(())
    }

    fn read_into(&self, page: u64, buf: &mut [u8]) -> StoreResult<()> {
        let buf = &mut buf[..PAGE_SIZE];
        buf.fill(0);
        if let Some(d) = self.contents().get(&page) {
            buf[..d.len()].copy_from_slice(d);
        }
        Ok(())
    }

    fn write_page(&self, page: u64, data: &[u8]) -> StoreResult<()> {
        assert!(data.len() <= PAGE_SIZE, "page write of {} bytes", data.len());
        self.contents().insert(page, data.into());
        Ok(())
    }

    fn sync(&self) -> StoreResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_ids_are_unique() {
        let a = InMemoryPageStore::new();
        let b = InMemoryPageStore::new();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn allocation_is_contiguous_and_counted() {
        let s = InMemoryPageStore::new();
        assert_eq!(s.allocate(3).unwrap(), 0);
        assert_eq!(s.allocate(1).unwrap(), 3);
        assert_eq!(s.allocate(2).unwrap(), 4);
        assert_eq!(s.page_count(), 6);
    }

    #[test]
    fn concurrent_allocation_never_overlaps() {
        let s = InMemoryPageStore::new();
        let spans: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope
                        .spawn(|| (0..100).map(|_| (s.allocate(2).unwrap(), 2)).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut firsts: Vec<u64> = spans.iter().map(|&(f, _)| f).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 400);
        assert_eq!(s.page_count(), 800);
    }

    #[test]
    fn written_pages_read_back_and_unwritten_read_zero() {
        let s = InMemoryPageStore::new();
        let first = s.allocate(2).unwrap();
        s.write_page(first, &[7u8; 100]).unwrap();
        let mut buf = vec![0xffu8; PAGE_SIZE];
        s.read_into(first, &mut buf).unwrap();
        assert_eq!(&buf[..100], &[7u8; 100][..]);
        assert!(buf[100..].iter().all(|&b| b == 0), "page tail reads as zeros");
        s.read_into(first + 1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "never-written page reads as zeros");
    }

    #[test]
    fn free_drops_contents_without_reusing_numbers() {
        let s = InMemoryPageStore::new();
        let first = s.allocate(1).unwrap();
        s.write_page(first, &[1u8; 8]).unwrap();
        s.free(first, 1).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        s.read_into(first, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(s.allocate(1).unwrap(), 1, "bump allocation is not rewound by free");
    }

    #[test]
    fn backend_is_memory_and_simulated() {
        let s = InMemoryPageStore::new();
        assert_eq!(s.backend(), Backend::Memory);
        assert!(s.backend().is_simulated());
        assert!(!Backend::File.is_simulated());
    }
}
