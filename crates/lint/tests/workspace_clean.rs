//! The tier-1 gate: the actual workspace tree must lint clean, so
//! `cargo test -q` enforces every rule without a separate CI wiring.

use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = vsim_lint::run(&root).expect("workspace walk failed");
    let listing = diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
    assert!(diags.is_empty(), "vsim-lint found {} violation(s):\n{listing}", diags.len());
}

#[test]
fn an_injected_violation_is_caught() {
    // End-to-end negative check against a scratch tree, exercising the
    // same walk + check path the CLI uses.
    let dir = std::env::temp_dir().join(format!("vsim-lint-negative-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("scratch dir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn worst(v: &[f64]) -> f64 {\n\
             *v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()\n\
         }\n",
    )
    .expect("scratch file");
    let diags = vsim_lint::run(&dir).expect("scratch walk failed");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        diags.iter().any(|d| d.rule == vsim_lint::rules::FLOAT_ORDERING && d.line == 2),
        "expected a float-ordering hit, got: {diags:?}"
    );
    // The missing #![forbid(unsafe_code)] is flagged too.
    assert!(diags.iter().any(|d| d.rule == vsim_lint::rules::UNSAFE_HYGIENE), "{diags:?}");
}
