//! The tier-1 gate: the actual workspace tree must lint clean, so
//! `cargo test -q` enforces every rule without a separate CI wiring.

use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = vsim_lint::run(&root).expect("workspace walk failed");
    let listing = diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
    assert!(diags.is_empty(), "vsim-lint found {} violation(s):\n{listing}", diags.len());
}

#[test]
fn an_injected_violation_is_caught() {
    // End-to-end negative check against a scratch tree, exercising the
    // same walk + check path the CLI uses.
    let dir = std::env::temp_dir().join(format!("vsim-lint-negative-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("scratch dir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn worst(v: &[f64]) -> f64 {\n\
             *v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()\n\
         }\n",
    )
    .expect("scratch file");
    let diags = vsim_lint::run(&dir).expect("scratch walk failed");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        diags.iter().any(|d| d.rule == vsim_lint::rules::FLOAT_ORDERING && d.line == 2),
        "expected a float-ordering hit, got: {diags:?}"
    );
    // The missing #![forbid(unsafe_code)] is flagged too.
    assert!(diags.iter().any(|d| d.rule == vsim_lint::rules::UNSAFE_HYGIENE), "{diags:?}");
}

#[test]
fn the_workspace_lock_graph_is_acyclic_and_covers_the_named_classes() {
    // The acceptance bar for the concurrency lints: the acquisition-
    // order graph observed on the real tree has no cycle (so there is a
    // consistent global lock order), and the model actually *sees* the
    // three load-bearing classes — if a refactor renamed the fields out
    // from under the registry, site counts dropping to zero would make
    // every lock rule silently vacuous.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = vsim_lint::Workspace::load(&root).expect("workspace walk failed");
    let model = vsim_lint::model::WorkspaceModel::build(&ws);
    assert_eq!(model.find_cycle(), None, "lock-order cycle in the real workspace");
    for name in ["pool-shard", "writer-mutex", "epoch-rwlock"] {
        let class = vsim_lint::model::class_by_name(name).expect("registered class");
        assert!(
            model.class_site_count(class) > 0,
            "no acquisition sites observed for lock class `{name}`"
        );
    }
    // The DOT dump renders every class node (CI archives it).
    let dot = model.render_lock_graph_dot(&ws.files);
    assert!(dot.starts_with("digraph lock_order"), "{dot}");
    for def in vsim_lint::model::LOCK_CLASSES {
        assert!(dot.contains(def.name), "missing node for `{}`:\n{dot}", def.name);
    }
}
