//! Phase one of the two-phase analyzer: a cross-file model of the
//! workspace's concurrency structure.
//!
//! The line-oriented lexer in [`source`](crate::source) tells code from
//! comments; this module reads the *code* views once more and extracts
//! the facts the concurrency rules need:
//!
//! - **Functions** — name, signature, body line range and crate, coarse
//!   enough to attribute a lock acquisition to the function holding it
//!   and to resolve same-crate calls by name.
//! - **Lock acquisitions** — every `.lock()` / `.read()` / `.write()`
//!   site classified into a named *lock class* (see [`LOCK_CLASSES`]),
//!   either by the receiver field (`self.working.lock()` → the writer
//!   mutex) or through a *guard-returning helper* of the same crate
//!   (`shard.lock()` resolves through `Shard::lock(&self) ->
//!   MutexGuard<…>` → the pool-shard class). Each site carries a guard
//!   *live range* derived from brace depth: a `let`-bound guard lives
//!   to the end of its enclosing block (or an explicit `drop(guard)`),
//!   an `if let`/`while let` guard lives inside the block its condition
//!   opens, and an unbound temporary lives to the end of its statement.
//! - **Lock-order edges** — while a guard of class `A` is live, any
//!   classified acquisition of class `B` (directly, or one call level
//!   down through the call graph) contributes the edge `A → B` to the
//!   global acquisition-order graph. The `lock-order` rule reports any
//!   cycle in that graph as a deadlock risk.
//! - **Atomic operations** — every `.load(..)`/`.store(..)`/RMW call
//!   whose arguments name a `std::sync::atomic` `Ordering`, with the
//!   orderings used, for the `atomics-discipline` rule.
//! - **The counter model** — the `IoTracker` / `TrackerSnapshot` /
//!   `QueryStats` / `CacheCounts` field lists parsed from the struct
//!   bodies themselves, so the counter-parity and atomics rules derive
//!   their ground truth from the code instead of hand-maintained lists.
//!
//! Everything here is lexical: the model is deliberately coarse (no
//! types, no borrows) but errs toward *missing* facts rather than
//! inventing them — an unclassifiable `m.lock()` is ignored, never
//! guessed. The rules built on top are therefore underapproximate and
//! waivable, like every other `vsim-lint` rule.

use crate::source::{find_word, SourceFile};
use crate::Workspace;

/// How a lock class is entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOp {
    /// `Mutex::lock` (or a guard-returning helper around it).
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

/// A named lock class: one logical lock (or family of locks, for the
/// striped pool shards) with a fixed position in the acquisition-order
/// lattice.
#[derive(Debug)]
pub struct LockClassDef {
    /// Stable kebab-case name used in diagnostics and the DOT dump.
    pub name: &'static str,
    /// Lattice position: lower ranks are *colder* (outer, long critical
    /// sections), higher ranks are *hotter* (inner, per-page critical
    /// sections). The intended acquisition order is rank-increasing.
    pub rank: u32,
    /// Hot classes additionally ban blocking work (page I/O, `save_*`,
    /// allocation-heavy calls, further lock acquisition) while held —
    /// the `no-blocking-under-lock` rule.
    pub hot: bool,
    /// Receiver field names whose `.lock()`/`.read()`/`.write()` means
    /// this class (`self.<field>.lock()`).
    pub fields: &'static [&'static str],
    /// Only classify field matches in files whose path contains this
    /// substring (`""` = anywhere) — belt and braces against generic
    /// field names like `inner` appearing in unrelated crates.
    pub file_hint: &'static str,
}

/// The workspace's lock classes, ordered by rank (coldest first). The
/// lattice mirrors the systems built in PRs 6–9: the `DynamicIndex`
/// writer mutex is the outermost (one writer, long deep-copy critical
/// sections), the published-epoch `RwLock` nests inside it (`publish`
/// swaps the pointer while still holding the writer lock), the file
/// store's free-map and the in-memory store's page map are store
/// internal, and the buffer-pool shard mutexes are the hottest — every
/// page access on every query path takes one, so they must stay tiny
/// and never nest.
pub const LOCK_CLASSES: &[LockClassDef] = &[
    LockClassDef {
        name: "writer-mutex",
        rank: 0,
        hot: false,
        fields: &["working"],
        file_hint: "crates/query/",
    },
    LockClassDef {
        name: "epoch-rwlock",
        rank: 1,
        hot: false,
        fields: &["published"],
        file_hint: "crates/query/",
    },
    LockClassDef {
        name: "free-state",
        rank: 2,
        hot: false,
        fields: &["state"],
        file_hint: "crates/store/",
    },
    LockClassDef {
        name: "page-data",
        rank: 3,
        hot: false,
        fields: &["data"],
        file_hint: "crates/store/",
    },
    LockClassDef {
        name: "pool-shard",
        rank: 4,
        hot: true,
        fields: &["inner"],
        file_hint: "crates/store/",
    },
];

/// Index into [`LOCK_CLASSES`].
pub type ClassId = usize;

pub fn class_by_name(name: &str) -> Option<ClassId> {
    LOCK_CLASSES.iter().position(|c| c.name == name)
}

/// One function (or method) in the workspace.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Index into `Workspace::files`.
    pub file: usize,
    /// `crates/<name>` prefix (or the top-level dir) the file lives in —
    /// the resolution scope for calls by name.
    pub krate: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's closing brace.
    pub end_line: usize,
    /// Brace depth just outside the body.
    pub base_depth: u32,
    /// Signature text from `fn` up to the opening brace, whitespace
    /// collapsed.
    pub sig: String,
    /// Classes this function acquires *directly* (any op).
    pub acquires: Vec<ClassId>,
    /// Whether the return type is a std lock guard (`MutexGuard`,
    /// `RwLockReadGuard`, `RwLockWriteGuard`) — callers of such a
    /// helper are acquisition sites themselves.
    pub returns_guard: bool,
}

/// One classified lock-acquisition site.
#[derive(Debug)]
pub struct Acquisition {
    pub class: ClassId,
    pub op: LockOp,
    /// Index into `Workspace::files`.
    pub file: usize,
    /// 0-based line of the site.
    pub line: usize,
    /// Byte offset of the method name in the file's joined `code`.
    pub at: usize,
    /// 0-based inclusive line range the guard is live for.
    pub live_from: usize,
    pub live_to: usize,
    /// Enclosing function (index into `WorkspaceModel::fns`), if any.
    pub fn_idx: Option<usize>,
    pub in_cfg_test: bool,
}

/// One edge of the acquisition-order graph: a `to`-class acquisition
/// observed while a `from`-class guard was live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockEdge {
    pub from: ClassId,
    pub to: ClassId,
    /// Witness: file index + 0-based line of the inner acquisition.
    pub file: usize,
    pub line: usize,
    pub in_cfg_test: bool,
}

/// One atomic memory operation with an explicit `Ordering` argument.
#[derive(Debug)]
pub struct AtomicOp {
    pub file: usize,
    /// 0-based line of the method call.
    pub line: usize,
    /// `load`, `store`, `fetch_add`, …
    pub method: String,
    /// Receiver identifier directly before the call (`self.pages.load`
    /// → `pages`), when one exists.
    pub receiver: Option<String>,
    /// Every `Ordering::X` variant named in the argument list.
    pub orderings: Vec<String>,
    pub in_cfg_test: bool,
}

/// Field lists of the counter-plumbing structs, parsed from the struct
/// bodies so a new counter is in the model the moment it is declared.
#[derive(Debug, Default)]
pub struct CounterModel {
    /// `(field, 0-based line)` of every `AtomicU64` field of `IoTracker`.
    pub tracker_fields: Vec<(String, usize)>,
    /// `(field, 0-based line)` of every `u64` field of the per-shard
    /// `CacheCounts`.
    pub cache_fields: Vec<(String, usize)>,
    /// Field names of `TrackerSnapshot`.
    pub snapshot_fields: Vec<String>,
    /// Field names of `QueryStats`.
    pub stats_fields: Vec<String>,
}

/// The cross-file model phase two runs over.
#[derive(Debug)]
pub struct WorkspaceModel {
    pub fns: Vec<FnInfo>,
    pub acquisitions: Vec<Acquisition>,
    pub edges: Vec<LockEdge>,
    pub atomics: Vec<AtomicOp>,
    pub counters: CounterModel,
}

fn krate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(top), _) => top.to_owned(),
        _ => String::new(),
    }
}

/// The identifier ending at byte `end` of `code`, if any.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    (start < end).then(|| &code[start..end])
}

/// Brace depth of `file` at byte offset `at` of its joined code.
fn depth_at(file: &SourceFile, at: usize) -> i64 {
    let line = file.line_of(at) - 1;
    let mut depth = file.lines[line].depth_start as i64;
    for b in file.code[file.line_start(line)..at].bytes() {
        match b {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// 0-based line of the `}` closing the innermost block around position
/// `(line, col)` at depth `start_depth` — the first point at or after
/// the position where brace depth drops below `below`. With
/// `opened == false` the scan first waits for depth to *reach* `below`
/// (used for `if let … {` guards, whose block opens after the
/// condition).
fn close_of_block(
    f: &SourceFile,
    line: usize,
    col: usize,
    start_depth: i64,
    below: i64,
    mut opened: bool,
) -> usize {
    let mut depth = start_depth;
    for i in line..f.lines.len() {
        let text =
            if i == line { f.lines[i].code.get(col..).unwrap_or("") } else { &f.lines[i].code };
        for b in text.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    if depth >= below {
                        opened = true;
                    }
                }
                b'}' => {
                    depth -= 1;
                    if opened && depth < below {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    f.lines.len().saturating_sub(1)
}

/// First 0-based line `>= line` ending the statement at `(line, col)`:
/// the next `;` — or `}`, for a tail expression closing its block.
fn statement_end(f: &SourceFile, line: usize, col: usize) -> usize {
    for (i, l) in f.lines.iter().enumerate().skip(line) {
        let hay = if i == line { l.code.get(col..).unwrap_or("") } else { &l.code };
        if hay.contains(';') || hay.contains('}') {
            return i;
        }
    }
    f.lines.len().saturating_sub(1)
}

/// Start column of the statement containing column `col` (after the
/// last `;` / `{` / `}` before it).
fn statement_start(code: &str, col: usize) -> usize {
    code[..col].rfind([';', '{', '}']).map_or(0, |i| i + 1)
}

/// `let [mut] <name> =` → `<name>` for simple identifier patterns.
fn binding_name(head: &str) -> Option<String> {
    let rest = head.strip_prefix("let")?.trim_start();
    let rest = rest.strip_prefix("mut ").map(str::trim_start).unwrap_or(rest);
    let name: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    (!name.is_empty() && rest[name.len()..].trim_start().starts_with('=')).then_some(name)
}

/// 0-based inclusive live range of the guard produced by the
/// acquisition whose method name starts at byte `at`.
fn guard_live_range(f: &SourceFile, at: usize) -> (usize, usize) {
    let line = f.line_of(at) - 1;
    let col = at - f.line_start(line);
    let depth = depth_at(f, at);
    let head = {
        let code = &f.lines[line].code;
        code[statement_start(code, col)..col].trim_start().to_owned()
    };
    if head.starts_with("if let") || head.starts_with("while let") {
        // Guard scoped to the block the condition opens.
        return (line, close_of_block(f, line, col, depth, depth + 1, false));
    }
    if head.starts_with("let") {
        // `let [mut] name = <acquisition>…;` — live to the end of the
        // enclosing block, or an explicit `drop(name)`.
        let end = close_of_block(f, line, col, depth, depth, true);
        if let Some(name) = binding_name(&head) {
            let drop_tok = format!("drop({name})");
            for (i, l) in f.lines.iter().enumerate().skip(line).take(end - line + 1) {
                let hay = if i == line { l.code.get(col..).unwrap_or("") } else { &l.code };
                if hay.contains(&drop_tok) {
                    return (line, i);
                }
            }
        }
        return (line, end);
    }
    // Unbound temporary: lives to the end of its statement.
    (line, statement_end(f, line, col))
}

/// Whether the `name(` occurrence at `at` is a call site (method or
/// free), not a definition.
fn at_call_boundary(code: &str, at: usize) -> bool {
    if at == 0 {
        return true;
    }
    let before = code.as_bytes()[at - 1] as char;
    if before.is_ascii_alphanumeric() || before == '_' {
        return false;
    }
    // `fn name(` is a definition.
    let head = code[..at].trim_end();
    !(head.ends_with("fn")
        && head[..head.len() - 2]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_')))
}

impl WorkspaceModel {
    pub fn build(ws: &Workspace) -> WorkspaceModel {
        let mut model = WorkspaceModel {
            fns: Vec::new(),
            acquisitions: Vec::new(),
            edges: Vec::new(),
            atomics: Vec::new(),
            counters: CounterModel::default(),
        };
        for (fi, f) in ws.files.iter().enumerate() {
            model.collect_fns(fi, f);
        }
        // Pass 1: field-classified acquisitions (these also determine
        // which helpers are guard-returning acquirers).
        for (fi, f) in ws.files.iter().enumerate() {
            model.collect_field_acquisitions(fi, f);
        }
        model.summarize_fns();
        // Pass 2: acquisitions through guard-returning helper calls
        // (`shard.lock()`, `self.working()`), resolved per crate.
        for (fi, f) in ws.files.iter().enumerate() {
            model.collect_helper_acquisitions(fi, f);
        }
        model.summarize_fns();
        model.collect_edges(&ws.files);
        for (fi, f) in ws.files.iter().enumerate() {
            model.collect_atomics(fi, f);
        }
        model.acquisitions.sort_by_key(|a| (a.file, a.at));
        model.counters = CounterModel::parse(ws);
        model
    }

    /// Extract `fn` items with their body ranges and signatures.
    fn collect_fns(&mut self, fi: usize, f: &SourceFile) {
        let krate = krate_of(&f.rel);
        let bytes = f.code.as_bytes();
        for at in find_word(&f.code, "fn") {
            let name: String = f.code[at + 2..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            // The body's opening brace: the first `{` after the
            // signature outside the parameter list; a `;` first means a
            // bodiless declaration.
            let mut open = None;
            let mut nesting = 0i32;
            let mut i = at;
            while i < bytes.len() {
                match bytes[i] {
                    b'(' | b'[' => nesting += 1,
                    b')' | b']' => nesting -= 1,
                    b'{' if nesting == 0 => {
                        open = Some(i);
                        break;
                    }
                    b';' if nesting == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            let Some(open) = open else { continue };
            // The matching closing brace.
            let mut depth = 0i32;
            let mut close = bytes.len().saturating_sub(1);
            for (j, &b) in bytes.iter().enumerate().skip(open) {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let sig = f.code[at..open].split_whitespace().collect::<Vec<_>>().join(" ");
            let returns_guard = sig.split("->").nth(1).is_some_and(|ret| {
                ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"]
                    .iter()
                    .any(|g| ret.contains(g))
            });
            self.fns.push(FnInfo {
                name,
                file: fi,
                krate: krate.clone(),
                sig_line: f.line_of(at) - 1,
                end_line: f.line_of(close) - 1,
                base_depth: depth_at(f, at).max(0) as u32,
                sig,
                acquires: Vec::new(),
                returns_guard,
            });
        }
    }

    /// The innermost function containing 0-based `line` of file `fi`.
    pub fn fn_at(&self, fi: usize, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, g)| g.file == fi && g.sig_line <= line && line <= g.end_line)
            .max_by_key(|(_, g)| g.base_depth)
            .map(|(i, _)| i)
    }

    fn push_acquisition(
        &mut self,
        fi: usize,
        f: &SourceFile,
        at: usize,
        class: ClassId,
        op: LockOp,
    ) {
        let line = f.line_of(at) - 1;
        let (live_from, live_to) = guard_live_range(f, at);
        self.acquisitions.push(Acquisition {
            class,
            op,
            file: fi,
            line,
            at,
            live_from,
            live_to,
            fn_idx: self.fn_at(fi, line),
            in_cfg_test: f.lines[line].in_cfg_test,
        });
    }

    fn collect_field_acquisitions(&mut self, fi: usize, f: &SourceFile) {
        for (method, op) in
            [("lock", LockOp::Lock), ("read", LockOp::Read), ("write", LockOp::Write)]
        {
            let needle = format!(".{method}(");
            let mut from = 0usize;
            while let Some(rel) = f.code[from..].find(&needle) {
                let at = from + rel;
                from = at + needle.len();
                let Some(recv) = ident_ending_at(&f.code, at) else { continue };
                let class = LOCK_CLASSES.iter().position(|c| {
                    c.fields.contains(&recv)
                        && (c.file_hint.is_empty() || f.rel.contains(c.file_hint))
                });
                if let Some(class) = class {
                    self.push_acquisition(fi, f, at + 1, class, op);
                }
            }
        }
    }

    /// Fold each function's direct acquisitions into its summary.
    fn summarize_fns(&mut self) {
        for g in &mut self.fns {
            g.acquires.clear();
        }
        for a in &self.acquisitions {
            if let Some(idx) = a.fn_idx {
                if !self.fns[idx].acquires.contains(&a.class) {
                    self.fns[idx].acquires.push(a.class);
                }
            }
        }
    }

    /// Guard-returning functions that acquire exactly one class are
    /// *acquirer helpers*: a call to one is an acquisition at the call
    /// site. Resolution is by bare name within the defining crate; a
    /// name defined twice with different classes is ambiguous and
    /// dropped.
    fn acquirer_helpers(&self) -> Vec<(String, String, ClassId, LockOp)> {
        let mut out: Vec<(String, String, ClassId, LockOp)> = Vec::new();
        let mut ambiguous: Vec<(String, String)> = Vec::new();
        for g in &self.fns {
            if !g.returns_guard || g.acquires.len() != 1 {
                continue;
            }
            let op = if g.sig.contains("RwLockWriteGuard") {
                LockOp::Write
            } else if g.sig.contains("RwLockReadGuard") {
                LockOp::Read
            } else {
                LockOp::Lock
            };
            let key = (g.name.clone(), g.krate.clone());
            if let Some(prev) = out.iter().find(|e| e.0 == key.0 && e.1 == key.1) {
                if prev.2 != g.acquires[0] {
                    ambiguous.push(key);
                }
                continue;
            }
            out.push((key.0, key.1, g.acquires[0], op));
        }
        out.retain(|e| !ambiguous.iter().any(|k| k.0 == e.0 && k.1 == e.1));
        out
    }

    fn collect_helper_acquisitions(&mut self, fi: usize, f: &SourceFile) {
        let helpers = self.acquirer_helpers();
        let krate = krate_of(&f.rel);
        for (name, helper_krate, class, op) in helpers {
            if helper_krate != krate {
                continue;
            }
            let needle = format!(".{name}(");
            let mut from = 0usize;
            while let Some(rel) = f.code[from..].find(&needle) {
                let at = from + rel;
                from = at + needle.len();
                // A site pass 1 already classified by its field keeps
                // that (more precise) classification.
                let site = at + 1;
                if self.acquisitions.iter().any(|a| a.file == fi && a.at == site) {
                    continue;
                }
                self.push_acquisition(fi, f, site, class, op);
            }
        }
    }

    /// Callable names that resolve, per crate, to a single non-empty
    /// set of directly-acquired classes. Same-named functions with
    /// *different* acquisition sets (e.g. each `PageStore` impl's
    /// `allocate`) are ambiguous and excluded rather than unioned,
    /// which would invent cross-store edges no execution can take.
    fn acquiring_callees(&self) -> Vec<(String, String, Vec<ClassId>)> {
        let mut out: Vec<(String, String, Vec<ClassId>)> = Vec::new();
        let mut ambiguous: Vec<(String, String)> = Vec::new();
        for g in &self.fns {
            if g.acquires.is_empty() {
                continue;
            }
            let mut acq = g.acquires.clone();
            acq.sort_unstable();
            let key = (g.name.clone(), g.krate.clone());
            if let Some(prev) = out.iter().find(|e| e.0 == key.0 && e.1 == key.1) {
                if prev.2 != acq {
                    ambiguous.push(key);
                }
                continue;
            }
            out.push((key.0, key.1, acq));
        }
        out.retain(|e| !ambiguous.iter().any(|k| k.0 == e.0 && k.1 == e.1));
        out
    }

    /// Build the acquisition-order graph: inner acquisitions and
    /// one-level callee acquisitions observed inside each guard's live
    /// range.
    fn collect_edges(&mut self, files: &[SourceFile]) {
        let callees = self.acquiring_callees();
        let mut edges: Vec<LockEdge> = Vec::new();
        for outer in &self.acquisitions {
            let f = &files[outer.file];
            // Direct nesting: another classified acquisition strictly
            // after the outer site, inside its live range.
            for inner in &self.acquisitions {
                if inner.file == outer.file
                    && inner.at > outer.at
                    && inner.line >= outer.live_from
                    && inner.line <= outer.live_to
                {
                    edges.push(LockEdge {
                        from: outer.class,
                        to: inner.class,
                        file: inner.file,
                        line: inner.line,
                        in_cfg_test: inner.in_cfg_test || outer.in_cfg_test,
                    });
                }
            }
            // One-level call propagation: a call to a same-crate
            // function that directly acquires some class.
            let krate = krate_of(&f.rel);
            for (name, callee_krate, acquires) in &callees {
                if *callee_krate != krate {
                    continue;
                }
                let needle = format!("{name}(");
                let mut from = 0usize;
                while let Some(rel) = f.code[from..].find(&needle) {
                    let at = from + rel;
                    from = at + needle.len();
                    if !at_call_boundary(&f.code, at) {
                        continue;
                    }
                    // The callee's acquire set came from `self.<field>`
                    // sites, so propagation is only sound when the call
                    // target is the same object: `self.name(…)` or a
                    // bare `name(…)`. `other.insert(…)` merely shares a
                    // method name with a lock-taking type.
                    if f.code[..at].ends_with('.') && !f.code[..at].ends_with("self.") {
                        continue;
                    }
                    let line = f.line_of(at) - 1;
                    if line < outer.live_from || line > outer.live_to || at <= outer.at {
                        continue;
                    }
                    // Sites already counted as direct acquisitions
                    // (helper calls, the outer's own producing call) are
                    // not *additional* callee edges.
                    if self.acquisitions.iter().any(|a| a.file == outer.file && a.at == at) {
                        continue;
                    }
                    for &class in acquires {
                        edges.push(LockEdge {
                            from: outer.class,
                            to: class,
                            file: outer.file,
                            line,
                            in_cfg_test: f.lines[line].in_cfg_test || outer.in_cfg_test,
                        });
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.from, e.to, e.file, e.line, e.in_cfg_test));
        edges.dedup();
        self.edges = edges;
    }

    fn collect_atomics(&mut self, fi: usize, f: &SourceFile) {
        const METHODS: &[&str] = &[
            "load",
            "store",
            "swap",
            "fetch_add",
            "fetch_sub",
            "fetch_and",
            "fetch_or",
            "fetch_xor",
            "fetch_update",
            "compare_exchange",
            "compare_exchange_weak",
        ];
        for method in METHODS {
            let needle = format!(".{method}(");
            let mut from = 0usize;
            while let Some(rel) = f.code[from..].find(&needle) {
                let at = from + rel;
                from = at + needle.len();
                let open = at + needle.len() - 1;
                let Some(close) = crate::rules::skip_parens(&f.code, open) else { continue };
                let args = &f.code[open + 1..close - 1];
                if !args.contains("Ordering::") {
                    continue; // not an atomic op (e.g. `pool.load(…)`)
                }
                let mut orderings = Vec::new();
                let mut scan = 0usize;
                while let Some(o) = args[scan..].find("Ordering::") {
                    let start = scan + o + "Ordering::".len();
                    let name: String = args[start..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    scan = start + name.len().max(1);
                    if !name.is_empty() && !orderings.contains(&name) {
                        orderings.push(name);
                    }
                }
                let line = f.line_of(at) - 1;
                self.atomics.push(AtomicOp {
                    file: fi,
                    line,
                    method: method.to_string(),
                    receiver: ident_ending_at(&f.code, at).map(str::to_owned),
                    orderings,
                    in_cfg_test: f.lines[line].in_cfg_test,
                });
            }
        }
        self.atomics.sort_by_key(|a| (a.file, a.line));
    }

    /// Non-test acquisition sites observed for `class`.
    pub fn class_site_count(&self, class: ClassId) -> usize {
        self.acquisitions.iter().filter(|a| a.class == class && !a.in_cfg_test).count()
    }

    /// Depth-first search for a cycle in the acquisition-order graph
    /// over non-test edges. Returns the class sequence of one cycle
    /// (first == last) or `None` when the graph is acyclic. Self-loops
    /// are cycles of length one.
    pub fn find_cycle(&self) -> Option<Vec<ClassId>> {
        let n = LOCK_CLASSES.len();
        let mut adj = vec![Vec::new(); n];
        for e in self.edges.iter().filter(|e| !e.in_cfg_test) {
            if !adj[e.from].contains(&e.to) {
                adj[e.from].push(e.to);
            }
        }
        fn dfs(
            v: ClassId,
            adj: &[Vec<ClassId>],
            state: &mut [u8],
            stack: &mut Vec<ClassId>,
        ) -> Option<Vec<ClassId>> {
            state[v] = 1; // on stack
            stack.push(v);
            for &w in &adj[v] {
                if state[w] == 1 {
                    let start = stack.iter().position(|&x| x == w).unwrap_or(0);
                    let mut cycle = stack[start..].to_vec();
                    cycle.push(w);
                    return Some(cycle);
                }
                if state[w] == 0 {
                    if let Some(c) = dfs(w, adj, state, stack) {
                        return Some(c);
                    }
                }
            }
            stack.pop();
            state[v] = 2; // done
            None
        }
        let mut state = vec![0u8; n];
        let mut stack: Vec<ClassId> = Vec::new();
        for v in 0..n {
            if state[v] == 0 {
                if let Some(c) = dfs(v, &adj, &mut state, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Whether the non-test graph has a path `from → … → to`.
    pub fn has_path(&self, from: ClassId, to: ClassId) -> bool {
        let mut seen = vec![false; LOCK_CLASSES.len()];
        let mut work = vec![from];
        while let Some(v) = work.pop() {
            if v == to {
                return true;
            }
            if std::mem::replace(&mut seen[v], true) {
                continue;
            }
            for e in self.edges.iter().filter(|e| !e.in_cfg_test && e.from == v) {
                work.push(e.to);
            }
        }
        false
    }

    /// Graphviz DOT rendering of the acquisition-order graph: every
    /// class is a node labelled with its rank and observed site count;
    /// every non-test edge carries its first witness `file:line`.
    pub fn render_lock_graph_dot(&self, files: &[SourceFile]) -> String {
        let mut s = String::from("digraph lock_order {\n  rankdir=LR;\n");
        for (id, c) in LOCK_CLASSES.iter().enumerate() {
            s.push_str(&format!(
                "  \"{}\" [label=\"{}\\nrank {} / {} site(s){}\"];\n",
                c.name,
                c.name,
                c.rank,
                self.class_site_count(id),
                if c.hot { " / hot" } else { "" },
            ));
        }
        let mut seen: Vec<(ClassId, ClassId)> = Vec::new();
        for e in self.edges.iter().filter(|e| !e.in_cfg_test) {
            if seen.contains(&(e.from, e.to)) {
                continue;
            }
            seen.push((e.from, e.to));
            s.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}:{}\"];\n",
                LOCK_CLASSES[e.from].name,
                LOCK_CLASSES[e.to].name,
                files.get(e.file).map(|f| f.rel.as_str()).unwrap_or("?"),
                e.line + 1,
            ));
        }
        s.push_str("}\n");
        s
    }
}

impl CounterModel {
    /// Parse the store's counter structs. Missing files (fixture
    /// workspaces) leave the corresponding lists empty.
    pub fn parse(ws: &Workspace) -> CounterModel {
        let mut m = CounterModel::default();
        if let Some(tracker) = ws.file("crates/store/src/tracker.rs") {
            m.tracker_fields = struct_fields(tracker, "struct IoTracker", "AtomicU64");
            m.cache_fields = struct_fields(tracker, "struct CacheCounts", "u64");
            m.snapshot_fields = struct_fields(tracker, "struct TrackerSnapshot", "")
                .into_iter()
                .map(|(n, _)| n)
                .collect();
        }
        if let Some(stats) = ws.file("crates/store/src/stats.rs") {
            m.stats_fields =
                struct_fields(stats, "struct QueryStats", "").into_iter().map(|(n, _)| n).collect();
        }
        m
    }

    /// Whether `field` names one of the `IoTracker` atomic counters.
    pub fn is_tracker_counter(&self, field: &str) -> bool {
        self.tracker_fields.iter().any(|(n, _)| n == field)
    }
}

/// `(name, 0-based line)` of every field of the first struct whose
/// header contains `header`. With a non-empty `ty`, only fields of
/// exactly that type are kept. Fields are assumed one per line — true
/// of every rustfmt-formatted struct in this workspace.
pub fn struct_fields(f: &SourceFile, header: &str, ty: &str) -> Vec<(String, usize)> {
    let Some(at) = f.code.find(header) else { return Vec::new() };
    let start = f.line_of(at) - 1;
    let base = depth_at(f, at);
    let end = close_of_block(f, start, at - f.line_start(start), base, base + 1, false);
    let mut out = Vec::new();
    for (i, l) in f.lines.iter().enumerate().take(end + 1).skip(start) {
        let t = l.code.trim().trim_end_matches(',');
        let Some((name, field_ty)) = t.split_once(':') else { continue };
        let name = name.trim().strip_prefix("pub ").unwrap_or(name.trim()).trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        if !ty.is_empty() && field_ty.trim() != ty {
            continue;
        }
        if ty.is_empty() && field_ty.trim().is_empty() {
            continue;
        }
        out.push((name.to_owned(), i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_for(sources: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel::build(&Workspace::from_sources(sources, None))
    }

    #[test]
    fn let_bound_guard_lives_to_its_block_end() {
        let src = "\
struct S { inner: std::sync::Mutex<u64> }
impl S {
    fn f(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        let x = *g + 1;
        x
    }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        assert_eq!(m.acquisitions.len(), 1);
        let a = &m.acquisitions[0];
        assert_eq!(LOCK_CLASSES[a.class].name, "pool-shard");
        // 0-based: acquired on line 3, enclosing block closes on line 6.
        assert_eq!((a.live_from, a.live_to), (3, 6));
        assert_eq!(m.fns[a.fn_idx.unwrap()].name, "f");
    }

    #[test]
    fn underscore_bindings_and_explicit_drop_terminate_the_range() {
        let src = "\
struct S { inner: std::sync::Mutex<u64> }
impl S {
    fn f(&self) {
        let _guard = self.inner.lock().unwrap();
        touch();
        drop(_guard);
        after();
    }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        let a = &m.acquisitions[0];
        assert_eq!((a.live_from, a.live_to), (3, 5), "drop(_guard) ends the range");
    }

    #[test]
    fn if_let_guards_are_scoped_to_the_condition_block() {
        let src = "\
struct S { inner: std::sync::Mutex<u64> }
impl S {
    fn f(&self) -> u64 {
        if let Ok(g) = self.inner.lock() {
            return *g;
        }
        0
    }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        let a = &m.acquisitions[0];
        assert_eq!((a.live_from, a.live_to), (3, 5), "guard dies at the if-let close brace");
    }

    #[test]
    fn sibling_branches_do_not_leak_guard_ranges() {
        // The `} else {` line both closes and opens a block; the first
        // branch's guard must not stay live into the second.
        let src = "\
struct S { inner: std::sync::Mutex<u64> }
impl S {
    fn f(&self, flip: bool) {
        if flip {
            let g = self.inner.lock().unwrap();
            touch(&g);
        } else {
            let h = self.inner.lock().unwrap();
            touch(&h);
        }
    }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        assert_eq!(m.acquisitions.len(), 2);
        assert_eq!((m.acquisitions[0].live_from, m.acquisitions[0].live_to), (4, 6));
        assert_eq!((m.acquisitions[1].live_from, m.acquisitions[1].live_to), (7, 9));
        assert!(m.edges.is_empty(), "sequential branches are not nested: {:?}", m.edges);
    }

    #[test]
    fn temporary_guards_end_mid_expression_with_their_statement() {
        let src = "\
struct S { inner: std::sync::Mutex<u64> }
impl S {
    fn peek(&self) -> u64 {
        *self.inner.lock().unwrap()
    }
    fn two(&self) -> u64 {
        self.inner.lock().unwrap().checked_add(1).unwrap_or(0);
        0
    }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        assert_eq!(m.acquisitions.len(), 2);
        // Tail expression: the temporary cannot outlive its line (the
        // enclosing block closes on the next).
        assert_eq!((m.acquisitions[0].live_from, m.acquisitions[0].live_to), (3, 4));
        // Statement temporary: dies at its own `;`.
        assert_eq!((m.acquisitions[1].live_from, m.acquisitions[1].live_to), (6, 6));
    }

    #[test]
    fn one_line_fn_bodies_are_modeled() {
        let src = "\
struct Shard { inner: std::sync::Mutex<u64> }
impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, u64> { self.inner.lock().unwrap() }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        let f = m.fns.iter().find(|f| f.name == "lock").expect("fn lock modeled");
        assert_eq!((f.sig_line, f.end_line), (2, 2));
        assert!(f.returns_guard);
        assert_eq!(f.acquires.len(), 1);
    }

    #[test]
    fn helper_calls_are_acquisition_sites_in_their_own_crate_only() {
        let pool = "\
pub struct Shard { inner: std::sync::Mutex<u64> }
impl Shard {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, u64> { self.inner.lock().unwrap() }
}
pub struct Pool { shards: Vec<Shard> }
impl Pool {
    pub fn get(&self, i: usize) -> u64 {
        let g = self.shards[i].lock();
        *g
    }
}
";
        let other = "\
fn elsewhere(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
";
        let m =
            model_for(&[("crates/store/src/pool.rs", pool), ("crates/query/src/exec.rs", other)]);
        // Two sites: the helper's own field acquisition and the call in
        // `get` — and nothing for the unrelated mutex in crates/query.
        assert_eq!(m.acquisitions.len(), 2, "{:?}", m.acquisitions);
        assert!(m.acquisitions.iter().all(|a| LOCK_CLASSES[a.class].name == "pool-shard"));
    }

    #[test]
    fn locks_inside_par_tiles_closures_are_scoped_to_the_closure() {
        let src = "\
struct S { inner: std::sync::Mutex<u64> }
impl S {
    fn f(&self, tiles: &[u64]) {
        par_tiles(tiles, |t| {
            let g = self.inner.lock().unwrap();
            consume(*g + t);
        });
        after(self);
    }
}
";
        let m = model_for(&[("crates/store/src/pool.rs", src)]);
        let a = &m.acquisitions[0];
        assert_eq!((a.live_from, a.live_to), (4, 6), "guard ends at the closure brace");
        assert_eq!(m.fns[a.fn_idx.unwrap()].name, "f");
    }

    #[test]
    fn nested_acquisitions_produce_lock_order_edges_and_cycles_are_found() {
        let good = "\
struct D { working: std::sync::Mutex<u64>, published: std::sync::RwLock<u64> }
impl D {
    fn publish(&self) {
        let g = self.working.lock().unwrap();
        *self.published.write().unwrap() = *g;
    }
}
";
        let m = model_for(&[("crates/query/src/epoch.rs", good)]);
        let w = class_by_name("writer-mutex").unwrap();
        let e = class_by_name("epoch-rwlock").unwrap();
        assert!(m.edges.iter().any(|x| x.from == w && x.to == e), "{:?}", m.edges);
        assert!(m.find_cycle().is_none());

        let bad = format!(
            "{good}\
impl D {{
    fn invert(&self) {{
        let p = self.published.write().unwrap();
        let g = self.working.lock().unwrap();
        consume(*p + *g);
    }}
}}
"
        );
        let m = model_for(&[("crates/query/src/epoch.rs", &bad)]);
        let cycle = m.find_cycle().expect("inverted order forms a cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        assert!(m.has_path(e, w) && m.has_path(w, e));
    }

    #[test]
    fn counter_model_derives_fields_from_struct_bodies() {
        let tracker = "\
pub struct IoTracker {
    pages: AtomicU64,
    hits: AtomicU64,
}
pub struct TrackerSnapshot {
    pub pages: u64,
    pub hits: u64,
}
pub struct CacheCounts {
    pub hits: u64,
}
";
        let ws = Workspace::from_sources(&[("crates/store/src/tracker.rs", tracker)], None);
        let m = CounterModel::parse(&ws);
        let names: Vec<&str> = m.tracker_fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["pages", "hits"]);
        assert_eq!(m.snapshot_fields, vec!["pages", "hits"]);
        assert_eq!(m.cache_fields.len(), 1);
        assert!(m.is_tracker_counter("pages") && !m.is_tracker_counter("misses"));
    }

    #[test]
    fn atomic_ops_are_collected_with_orderings_and_plain_loads_are_not() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
struct T { n: AtomicU64 }
impl T {
    fn f(&self, pool: &Pool) {
        self.n.fetch_add(1, Ordering::Relaxed);
        let _ = self.n.load(Ordering::SeqCst);
        pool.load(7);
    }
}
";
        let m = model_for(&[("crates/store/src/tracker.rs", src)]);
        assert_eq!(m.atomics.len(), 2, "{:?}", m.atomics);
        let fetch = m.atomics.iter().find(|a| a.method == "fetch_add").unwrap();
        assert_eq!(fetch.orderings, vec!["Relaxed"]);
        assert_eq!(fetch.receiver.as_deref(), Some("n"));
        let load = m.atomics.iter().find(|a| a.method == "load").unwrap();
        assert_eq!(load.orderings, vec!["SeqCst"]);
    }
}
