//! The rule set. Each rule guards an invariant introduced by an
//! earlier PR; see DESIGN.md §10 for the full rationale table.

use crate::source::{directive_words, find_word, SourceFile};
use crate::{Diagnostic, Workspace};

pub const FLOAT_ORDERING: &str = "float-ordering";
pub const NO_ALLOC_KERNEL: &str = "no-alloc-kernel";
pub const STORAGE_BOUNDARY: &str = "storage-boundary";
pub const COUNTER_PARITY: &str = "counter-parity";
pub const UNSAFE_HYGIENE: &str = "unsafe-hygiene";
pub const EXPERIMENT_DOCS: &str = "experiment-docs";
pub const STORE_ERROR_HYGIENE: &str = "store-error-hygiene";
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Rule ids a waiver may name. `waiver-syntax` is listed so a directive
/// naming it parses, but the engine never suppresses it.
pub const KNOWN_RULES: &[&str] = &[
    FLOAT_ORDERING,
    NO_ALLOC_KERNEL,
    STORAGE_BOUNDARY,
    COUNTER_PARITY,
    UNSAFE_HYGIENE,
    EXPERIMENT_DOCS,
    STORE_ERROR_HYGIENE,
    WAIVER_SYNTAX,
];

/// Scope tags `lint-scope:` may declare.
pub const KNOWN_SCOPES: &[&str] = &["no_alloc"];

pub trait Rule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every rule, in the order they run.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatOrdering),
        Box::new(NoAllocKernel),
        Box::new(StorageBoundary),
        Box::new(CounterParity),
        Box::new(UnsafeHygiene),
        Box::new(ExperimentDocs),
        Box::new(StoreErrorHygiene),
        Box::new(WaiverSyntax),
    ]
}

fn diag(f: &SourceFile, line: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic { file: f.rel.clone(), line, rule, message }
}

/// Byte index just past the `)` matching the `(` at `open`, scanning
/// blanked code (so literal parens are already gone).
fn skip_parens(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Number of top-level commas between the parens opening at `open`.
fn toplevel_commas(code: &str, open: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut commas = 0usize;
    for &b in bytes.iter().skip(open) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' if depth == 1 => break,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 1 => commas += 1,
            _ => {}
        }
    }
    commas
}

fn skip_ws(code: &str, mut i: usize) -> usize {
    let bytes = code.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Whether the identifier-ish token at `at..at+len` starts at an
/// identifier boundary (so `SmallVec::new` doesn't match `Vec::new`).
fn starts_at_boundary(code: &str, at: usize) -> bool {
    at == 0 || {
        let c = code.as_bytes()[at - 1] as char;
        !(c.is_ascii_alphanumeric() || c == '_')
    }
}

/// Occurrences of `token` in `code` honouring a leading identifier
/// boundary when the token starts with an identifier character.
fn token_positions<'a>(code: &'a str, token: &'a str) -> impl Iterator<Item = usize> + 'a {
    let needs_boundary =
        token.chars().next().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while from <= code.len() {
            let rel = code[from..].find(token)?;
            let at = from + rel;
            from = at + token.len().max(1);
            if !needs_boundary || starts_at_boundary(code, at) {
                return Some(at);
            }
        }
        None
    })
}

/// The `{ … }` body (and the byte offset of its header) of the first
/// item whose header contains `header` — good enough for the handful of
/// store items L4 cross-references.
fn item_body<'a>(code: &'a str, header: &str) -> Option<(usize, &'a str)> {
    let at = code.find(header)?;
    let open = at + code[at..].find('{')?;
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((at, &code[open + 1..i]));
                }
            }
            _ => {}
        }
    }
    None
}

/// The word immediately before byte `at`, if any.
fn word_before(code: &str, at: usize) -> Option<&str> {
    let head = code[..at].trim_end();
    let start = head.rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).map_or(0, |i| i + 1);
    if start < head.len() {
        Some(&head[start..])
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// L1: float-ordering
// ---------------------------------------------------------------------

/// PR 2 made every query-path comparator NaN-safe with `total_cmp`
/// after `partial_cmp(..).unwrap()` panicked on a NaN distance. This
/// rule keeps the unsafe form from creeping back in.
struct FloatOrdering;

impl Rule for FloatOrdering {
    fn id(&self) -> &'static str {
        FLOAT_ORDERING
    }

    fn description(&self) -> &'static str {
        "comparators must use total_cmp, never partial_cmp + unwrap/unwrap_or(Ordering)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            for at in find_word(&f.code, "partial_cmp") {
                // Definitions of `fn partial_cmp` (PartialOrd impls) are
                // not call sites.
                if word_before(&f.code, at) == Some("fn") {
                    continue;
                }
                let after_name = skip_ws(&f.code, at + "partial_cmp".len());
                if f.code.as_bytes().get(after_name) != Some(&b'(') {
                    continue;
                }
                let Some(close) = skip_parens(&f.code, after_name) else { continue };
                let rest = &f.code[skip_ws(&f.code, close)..];
                let bad = ["unwrap()", "expect("]
                    .iter()
                    .any(|m| rest.strip_prefix('.').is_some_and(|r| r.trim_start().starts_with(m)))
                    || ["unwrap_or(", "unwrap_or_else("].iter().any(|m| {
                        rest.strip_prefix('.')
                            .and_then(|r| r.trim_start().strip_prefix(m))
                            .is_some_and(|args| args.contains("Ordering") || args.contains("Equal"))
                    });
                if bad {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        FLOAT_ORDERING,
                        "NaN-unsafe comparator: replace `partial_cmp(..).unwrap…` with \
                         `total_cmp` (or waive with a reason)"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L2: no-alloc-kernel
// ---------------------------------------------------------------------

/// The matching kernel (PR 2) is allocation-free in steady state; a
/// counting-allocator test proves it for the paths it exercises, and
/// this rule covers new code paths at review time. Files opt in with
/// `lint-scope: no_alloc`; constructors carry function-level waivers.
struct NoAllocKernel;

/// Files that must stay in the `no_alloc` scope (deleting the tag is
/// itself a violation).
const REQUIRED_NO_ALLOC: &[&str] = &[
    "crates/setdist/src/engine.rs",
    "crates/setdist/src/hungarian.rs",
    "crates/setdist/src/simd.rs",
];

const ALLOC_TOKENS: &[&str] =
    &["Vec::new", "vec!", ".to_vec()", ".collect::<Vec", "Box::new", ".clone()", "String::new"];

impl Rule for NoAllocKernel {
    fn id(&self) -> &'static str {
        NO_ALLOC_KERNEL
    }

    fn description(&self) -> &'static str {
        "no allocation in files tagged `lint-scope: no_alloc` (the matching kernel)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            let tagged = f.scopes.iter().any(|s| s == "no_alloc");
            if REQUIRED_NO_ALLOC.contains(&f.rel.as_str()) && !tagged {
                out.push(diag(
                    f,
                    1,
                    NO_ALLOC_KERNEL,
                    "kernel file must carry `lint-scope: no_alloc`".to_owned(),
                ));
            }
            if !tagged {
                continue;
            }
            for (i, line) in f.lines.iter().enumerate() {
                if line.in_cfg_test {
                    continue;
                }
                for tok in ALLOC_TOKENS {
                    if token_positions(&line.code, tok).next().is_some() {
                        out.push(diag(
                            f,
                            i + 1,
                            NO_ALLOC_KERNEL,
                            format!("`{tok}` allocates inside the no_alloc kernel scope"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L3: storage-boundary
// ---------------------------------------------------------------------

/// PR 1's layering rule: outside `crates/store`, page reads and cost
/// accounting flow through `QueryContext` (3-argument `access`,
/// 2-argument `pin`), never straight at a `BufferPool`/`IoTracker`.
struct StorageBoundary;

/// Tracker plumbing reserved for the buffer pool itself.
const TRACKER_PLUMBING: &[&str] =
    &[".record_pages(", ".record_hit(", ".record_miss(", ".record_eviction(", ".read_page("];

impl Rule for StorageBoundary {
    fn id(&self) -> &'static str {
        STORAGE_BOUNDARY
    }

    fn description(&self) -> &'static str {
        "outside crates/store, page access goes through QueryContext, not BufferPool/IoTracker"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            if f.rel.starts_with("crates/store/") {
                continue;
            }
            for ctor in ["IoTracker::new", "IoTracker::default", "IoTracker {"] {
                for at in token_positions(&f.code, ctor) {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        STORAGE_BOUNDARY,
                        "construct a QueryContext instead of a raw IoTracker".to_owned(),
                    ));
                }
            }
            for tok in TRACKER_PLUMBING {
                for at in token_positions(&f.code, tok) {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        STORAGE_BOUNDARY,
                        format!(
                            "`{}` is buffer-pool plumbing; record costs via QueryContext",
                            &tok[1..tok.len() - 1]
                        ),
                    ));
                }
            }
            // BufferPool::access/pin take a trailing `&IoTracker`; the
            // QueryContext wrappers don't. Arg count tells them apart.
            for (method, ctx_commas) in [("access", 2usize), ("pin", 1usize)] {
                for at in find_word(&f.code, method) {
                    if at == 0 || f.code.as_bytes()[at - 1] != b'.' {
                        continue;
                    }
                    let open = skip_ws(&f.code, at + method.len());
                    if f.code.as_bytes().get(open) != Some(&b'(') {
                        continue;
                    }
                    if toplevel_commas(&f.code, open) > ctx_commas {
                        out.push(diag(
                            f,
                            f.line_of(at),
                            STORAGE_BOUNDARY,
                            format!("direct BufferPool::{method} bypasses QueryContext accounting"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L4: counter-parity
// ---------------------------------------------------------------------

/// Both `pruned` (PR 2) and `filter_steps` (PR 3) initially landed
/// half-threaded: counted on `IoTracker` but dropped on the floor
/// before reaching `QueryStats`. This rule cross-references the three
/// store files so a new counter must be wired end to end.
struct CounterParity;

const TRACKER_RS: &str = "crates/store/src/tracker.rs";
const STATS_RS: &str = "crates/store/src/stats.rs";
const CONTEXT_RS: &str = "crates/store/src/context.rs";
const POOL_RS: &str = "crates/store/src/pool.rs";

impl Rule for CounterParity {
    fn id(&self) -> &'static str {
        COUNTER_PARITY
    }

    fn description(&self) -> &'static str {
        "every IoTracker counter is threaded through snapshot/reset, QueryStats and QueryContext"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(tracker) = ws.file(TRACKER_RS) else { return };
        let stats = ws.file(STATS_RS);
        let context = ws.file(CONTEXT_RS);

        // The buffer pool keeps one `CacheCounts` per lock shard and
        // sums them with `Add` into `PoolStats`, so a field that misses
        // either side silently reads zero exactly when the pool is
        // sharded — the concurrency configuration the tests exercise
        // least. Cross-reference every field against both.
        if let Some((cache_at, cache_body)) = item_body(&tracker.code, "struct CacheCounts") {
            let pool = ws.file(POOL_RS);
            let add_body = item_body(&tracker.code, "fn add").map(|(_, b)| b);
            let cache_fields = cache_body
                .lines()
                .filter_map(|l| l.trim().trim_end_matches(',').strip_suffix(": u64"))
                .map(|name| name.trim().trim_start_matches("pub ").trim());
            for field in cache_fields {
                let at = tracker.code.find(&format!("{field}: u64")).unwrap_or(cache_at);
                let line = tracker.line_of(at);
                if add_body.is_some_and(|b| find_word(b, field).next().is_none()) {
                    out.push(diag(
                        tracker,
                        line,
                        COUNTER_PARITY,
                        format!(
                            "CacheCounts field `{field}` is missing from the Add impl, \
                             so per-shard totals would drop it"
                        ),
                    ));
                }
                if pool.is_some_and(|p| find_word(&p.code, field).next().is_none()) {
                    out.push(diag(
                        tracker,
                        line,
                        COUNTER_PARITY,
                        format!(
                            "CacheCounts field `{field}` is never maintained by the \
                             buffer pool's shards"
                        ),
                    ));
                }
            }
        }

        let Some((_, tracker_body)) = item_body(&tracker.code, "struct IoTracker") else {
            return;
        };
        let fields: Vec<&str> = tracker_body
            .lines()
            .filter_map(|l| l.trim().trim_end_matches(',').strip_suffix(": AtomicU64"))
            .map(|name| name.trim().trim_start_matches("pub ").trim())
            .collect();

        let snapshot_body = item_body(&tracker.code, "fn snapshot").map(|(_, b)| b);
        let reset_body = item_body(&tracker.code, "fn reset").map(|(_, b)| b);
        for field in &fields {
            let at = tracker.code.find(&format!("{field}: AtomicU64")).unwrap_or(0);
            let line = tracker.line_of(at);
            for (body, what) in [(snapshot_body, "snapshot()"), (reset_body, "reset()")] {
                if body.is_some_and(|b| find_word(b, field).next().is_none()) {
                    out.push(diag(
                        tracker,
                        line,
                        COUNTER_PARITY,
                        format!("IoTracker field `{field}` is missing from {what}"),
                    ));
                }
            }
        }

        // Every `count_X` accessor must surface `X` all the way to
        // QueryStats and the QueryContext forwarders.
        let stats_struct = stats.and_then(|s| item_body(&s.code, "struct QueryStats"));
        let from_snap = stats.and_then(|s| item_body(&s.code, "fn from_snapshot"));
        let accumulate = stats.and_then(|s| item_body(&s.code, "fn accumulate"));
        let snap_struct = item_body(&tracker.code, "struct TrackerSnapshot");
        for at in token_positions(&tracker.code, "pub fn count_") {
            let name_start = at + "pub fn ".len();
            let rest = &tracker.code[name_start..];
            let name_end =
                rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(rest.len());
            let method = &rest[..name_end];
            let counter = &method["count_".len()..];
            let line = tracker.line_of(at);
            let mut missing: Vec<&str> = Vec::new();
            if snap_struct.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("TrackerSnapshot");
            }
            if stats_struct.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("QueryStats");
            }
            if from_snap.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("QueryStats::from_snapshot");
            }
            if accumulate.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("QueryStats::accumulate");
            }
            if context.is_some_and(|c| !c.code.contains(&format!("fn {method}"))) {
                missing.push("QueryContext");
            }
            if !missing.is_empty() {
                out.push(diag(
                    tracker,
                    line,
                    COUNTER_PARITY,
                    format!("counter `{counter}` is not threaded through {}", missing.join(", ")),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L5: unsafe-hygiene
// ---------------------------------------------------------------------

/// Unsafe stays auditable: each `unsafe` keyword carries a `SAFETY:`
/// comment, and crates that need none say so with
/// `#![forbid(unsafe_code)]` so a future block can't land silently.
struct UnsafeHygiene;

impl Rule for UnsafeHygiene {
    fn id(&self) -> &'static str {
        UNSAFE_HYGIENE
    }

    fn description(&self) -> &'static str {
        "`unsafe` requires a SAFETY: comment; unsafe-free crates declare forbid(unsafe_code)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let mut unsafe_crates: Vec<&str> = Vec::new();
        for f in &ws.files {
            let mut file_has_unsafe = false;
            for (i, line) in f.lines.iter().enumerate() {
                if find_word(&line.code, "unsafe").next().is_none() {
                    continue;
                }
                file_has_unsafe = true;
                if !f.comment_block_contains(i + 1, "SAFETY:") {
                    out.push(diag(
                        f,
                        i + 1,
                        UNSAFE_HYGIENE,
                        "`unsafe` without a `// SAFETY:` comment on or above it".to_owned(),
                    ));
                }
            }
            if file_has_unsafe {
                if let Some(name) = src_crate(&f.rel) {
                    unsafe_crates.push(name);
                }
            }
        }
        for f in &ws.files {
            let Some(name) = src_crate(&f.rel) else { continue };
            if f.rel != format!("crates/{name}/src/lib.rs") {
                continue;
            }
            if !unsafe_crates.contains(&name) && !f.code.contains("forbid(unsafe_code)") {
                out.push(diag(
                    f,
                    1,
                    UNSAFE_HYGIENE,
                    format!("crate `{name}` uses no unsafe: declare #![forbid(unsafe_code)]"),
                ));
            }
        }
    }
}

/// `crates/<name>/src/…` → `<name>`.
fn src_crate(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

// ---------------------------------------------------------------------
// L6: experiment-docs
// ---------------------------------------------------------------------

/// Every experiment binary must be written up: an `exp_*` binary nobody
/// can interpret is dead weight in the reproduction.
struct ExperimentDocs;

impl Rule for ExperimentDocs {
    fn id(&self) -> &'static str {
        EXPERIMENT_DOCS
    }

    fn description(&self) -> &'static str {
        "every crates/bench/src/bin/exp_*.rs binary is documented in EXPERIMENTS.md"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            let Some(name) = f.rel.strip_prefix("crates/bench/src/bin/") else { continue };
            if !name.starts_with("exp_") {
                continue;
            }
            let stem = name.trim_end_matches(".rs");
            let documented = ws.experiments_md.as_deref().is_some_and(|md| md.contains(stem));
            if !documented {
                out.push(diag(
                    f,
                    1,
                    EXPERIMENT_DOCS,
                    format!("experiment binary `{stem}` has no section in EXPERIMENTS.md"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L7: store-error-hygiene
// ---------------------------------------------------------------------

/// The fault-injection PR made every storage fallibility typed: page
/// stores return `StoreResult`, lock poisoning is recovered with
/// `unwrap_or_else(PoisonError::into_inner)`, and callers see
/// `StoreError` instead of a panic. A single `.unwrap()` on an I/O path
/// inside `crates/store` would turn an injectable, testable fault back
/// into an abort, so none are allowed outside `#[cfg(test)]` code.
struct StoreErrorHygiene;

impl Rule for StoreErrorHygiene {
    fn id(&self) -> &'static str {
        STORE_ERROR_HYGIENE
    }

    fn description(&self) -> &'static str {
        "crates/store propagates StoreError: no unwrap/expect (incl. on locks) outside tests"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            // Integration tests under crates/store/tests/ are all test
            // code; only the shipped sources are held to the standard.
            if !f.rel.starts_with("crates/store/src/") {
                continue;
            }
            for (i, line) in f.lines.iter().enumerate() {
                if line.in_cfg_test {
                    continue;
                }
                for tok in [".unwrap()", ".expect("] {
                    for at in token_positions(&line.code, tok) {
                        let on_lock = line.code[..at].trim_end().ends_with(".lock()");
                        let message = if on_lock {
                            format!(
                                "panicking on a poisoned lock: recover with \
                                 `lock().unwrap_or_else(PoisonError::into_inner)` \
                                 instead of `{tok}`"
                            )
                        } else {
                            format!(
                                "`{tok}` in crates/store outside tests: propagate a \
                                 typed StoreError (or waive with a reason)"
                            )
                        };
                        out.push(diag(f, i + 1, STORE_ERROR_HYGIENE, message));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Meta: waiver-syntax
// ---------------------------------------------------------------------

/// A waiver that doesn't parse silently suppresses nothing — which
/// looks exactly like working enforcement. This meta-rule makes
/// malformed or unknown directives loud, and is itself unwaivable.
struct WaiverSyntax;

impl Rule for WaiverSyntax {
    fn id(&self) -> &'static str {
        WAIVER_SYNTAX
    }

    fn description(&self) -> &'static str {
        "lint-allow/lint-scope directives must parse and name known rules/scopes"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            for e in &f.directive_errors {
                out.push(diag(f, e.line, WAIVER_SYNTAX, e.message.clone()));
            }
            for w in &f.waivers {
                if !KNOWN_RULES.contains(&w.rule.as_str()) {
                    out.push(diag(
                        f,
                        w.first_line,
                        WAIVER_SYNTAX,
                        format!("lint-allow names unknown rule `{}`", w.rule),
                    ));
                }
            }
            for (i, line) in f.lines.iter().enumerate() {
                if let Some(words) = directive_words(&line.comment, "lint-scope:") {
                    if let Some(tag) = words.first() {
                        if !KNOWN_SCOPES.contains(&tag.as_str()) {
                            out.push(diag(
                                f,
                                i + 1,
                                WAIVER_SYNTAX,
                                format!("lint-scope names unknown scope `{tag}`"),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{check, rules, Workspace};

    fn diags_for(sources: &[(&str, &str)]) -> Vec<crate::Diagnostic> {
        check(&Workspace::from_sources(sources, None))
    }

    fn rules_hit(sources: &[(&str, &str)], rule: &str) -> Vec<usize> {
        diags_for(sources).iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
    }

    /// A minimal clean file so fixtures don't trip unrelated rules.
    const CLEAN: &str = "#![forbid(unsafe_code)]\npub fn id(x: u64) -> u64 {\n    x\n}\n";

    #[test]
    fn l1_flags_unwrap_and_unwrap_or_ordering_variants() {
        let bad = "#![forbid(unsafe_code)]\n\
            fn s(v: &mut [f64]) {\n\
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                v.sort_by(|a, b| {\n\
                    a.partial_cmp(b)\n\
                        .unwrap()\n\
                });\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/q/src/lib.rs", bad)], rules::FLOAT_ORDERING),
            vec![3, 4, 6]
        );
    }

    #[test]
    fn l1_allows_total_cmp_handled_options_and_trait_impls() {
        let good = "#![forbid(unsafe_code)]\n\
            use std::cmp::Ordering;\n\
            struct W(f64);\n\
            impl PartialOrd for W {\n\
                fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                    Some(self.0.total_cmp(&o.0))\n\
                }\n\
            }\n\
            fn s(v: &mut [f64]) {\n\
                v.sort_by(|a, b| a.total_cmp(b));\n\
                let _ = 1.0f64.partial_cmp(&2.0).map(Ordering::reverse);\n\
                let _ = 1.0f64.partial_cmp(&2.0).unwrap_or(Ordering::Less.reverse());\n\
            }\n";
        // The `unwrap_or(Ordering::…)` on line 12 *is* a violation; the
        // rest must stay clean.
        assert_eq!(rules_hit(&[("crates/q/src/lib.rs", good)], rules::FLOAT_ORDERING), vec![12]);
    }

    #[test]
    fn l2_flags_allocation_only_in_tagged_files_outside_tests() {
        let tagged = "#![forbid(unsafe_code)]\n\
            // lint-scope: no_alloc\n\
            fn hot(n: usize) -> usize {\n\
                let v = vec![0u8; n];\n\
                let w = v.to_vec();\n\
                w.len()\n\
            }\n\
            #[cfg(test)]\n\
            mod tests {\n\
                fn t() {\n\
                    let _ = Vec::<u8>::new();\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/k/src/hot.rs", tagged)], rules::NO_ALLOC_KERNEL),
            vec![4, 5]
        );
        // Same content untagged: no scope, no findings.
        let untagged = tagged.replace("// lint-scope: no_alloc", "");
        assert_eq!(
            rules_hit(&[("crates/k/src/hot.rs", &untagged)], rules::NO_ALLOC_KERNEL),
            vec![]
        );
    }

    #[test]
    fn l2_requires_the_kernel_files_to_stay_tagged() {
        assert_eq!(
            rules_hit(&[("crates/setdist/src/engine.rs", CLEAN)], rules::NO_ALLOC_KERNEL),
            vec![1]
        );
    }

    #[test]
    fn l3_flags_raw_trackers_and_four_arg_access() {
        let bad = "#![forbid(unsafe_code)]\n\
            fn q(pool: &BufferPool, store: StoreId) {\n\
                let t = IoTracker::default();\n\
                pool.access(store, 0, 4, &t);\n\
                t.record_hit();\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/q/src/lib.rs", bad)], rules::STORAGE_BOUNDARY),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn l3_allows_query_context_calls_and_store_internals() {
        let good = "#![forbid(unsafe_code)]\n\
            fn q(ctx: &QueryContext, store: StoreId) {\n\
                ctx.access(store, 0, 4);\n\
                let _guard = ctx.pin(store, 7);\n\
                ctx.record_bytes(128);\n\
            }\n";
        assert_eq!(rules_hit(&[("crates/q/src/lib.rs", good)], rules::STORAGE_BOUNDARY), vec![]);
        // The same raw-pool code *inside* crates/store is the pool's own
        // business.
        let internal = "fn f(pool: &BufferPool, s: StoreId, t: &IoTracker) {\n\
            pool.access(s, 0, 1, t);\n\
        }\n";
        assert_eq!(
            rules_hit(
                &[("crates/store/src/pool.rs", internal), ("crates/store/src/lib.rs", CLEAN)],
                rules::STORAGE_BOUNDARY
            ),
            vec![]
        );
    }

    /// Fixture store files where `lost` is counted on the tracker but
    /// never threaded to QueryStats/QueryContext.
    fn parity_fixture(thread_everywhere: bool) -> Vec<(&'static str, String)> {
        let extra_field = "    lost: AtomicU64,\n";
        let tracker = format!(
            "pub struct IoTracker {{\n    refinements: AtomicU64,\n{extra_field}}}\n\
             impl IoTracker {{\n\
                 pub fn count_refinements(&self, n: u64) {{ self.refinements.fetch_add(n, O); }}\n\
                 pub fn count_lost(&self, n: u64) {{ self.lost.fetch_add(n, O); }}\n\
                 pub fn snapshot(&self) -> TrackerSnapshot {{\n\
                     TrackerSnapshot {{ refinements: self.refinements.load(O), {} }}\n\
                 }}\n\
                 pub fn reset(&self) {{ self.refinements.store(0, O); {} }}\n\
             }}\n\
             pub struct TrackerSnapshot {{\n    pub refinements: u64,\n{}}}\n",
            if thread_everywhere { "lost: self.lost.load(O)" } else { "" },
            if thread_everywhere { "self.lost.store(0, O);" } else { "" },
            if thread_everywhere { "    pub lost: u64,\n" } else { "" },
        );
        let stats = format!(
            "pub struct QueryStats {{\n    pub refinements: u64,\n{}}}\n\
             impl QueryStats {{\n\
                 fn from_snapshot(s: TrackerSnapshot) -> Self {{\n\
                     QueryStats {{ refinements: s.refinements, {} }}\n\
                 }}\n\
                 pub fn accumulate(&mut self, o: &QueryStats) {{\n\
                     self.refinements += o.refinements;\n{}\
                 }}\n\
             }}\n",
            if thread_everywhere { "    pub lost: u64,\n" } else { "" },
            if thread_everywhere { "lost: s.lost" } else { "" },
            if thread_everywhere { "self.lost += o.lost;\n" } else { "" },
        );
        let context = format!(
            "impl QueryContext {{\n\
                 pub fn count_refinements(&self, n: u64) {{ self.t.count_refinements(n); }}\n{}\
             }}\n",
            if thread_everywhere {
                "pub fn count_lost(&self, n: u64) { self.t.count_lost(n); }\n"
            } else {
                ""
            },
        );
        vec![
            ("crates/store/src/tracker.rs", tracker),
            ("crates/store/src/stats.rs", stats),
            ("crates/store/src/context.rs", context),
            ("crates/store/src/lib.rs", CLEAN.to_owned()),
        ]
    }

    #[test]
    fn l4_flags_half_threaded_counters() {
        let sources = parity_fixture(false);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        let hits: Vec<String> = diags_for(&refs)
            .into_iter()
            .filter(|d| d.rule == rules::COUNTER_PARITY)
            .map(|d| d.message)
            .collect();
        assert!(hits.iter().any(|m| m.contains("`lost` is missing from snapshot()")), "{hits:?}");
        assert!(hits.iter().any(|m| m.contains("`lost` is missing from reset()")), "{hits:?}");
        assert!(
            hits.iter().any(|m| m.contains("`lost` is not threaded through")
                && m.contains("QueryStats")
                && m.contains("QueryContext")),
            "{hits:?}"
        );
    }

    #[test]
    fn l4_accepts_fully_threaded_counters() {
        let sources = parity_fixture(true);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        assert_eq!(rules_hit(&refs, rules::COUNTER_PARITY), vec![]);
    }

    /// Fixture store files carrying the dynamic-lifecycle counters
    /// (`inserts`/`deletes`/`epoch_pins`), each half-threaded in a
    /// *different* place when `thread_everywhere` is false: `inserts`
    /// never reaches snapshot()/reset(), `deletes` is dropped between
    /// TrackerSnapshot and QueryStats, and `epoch_pins` lacks its
    /// QueryContext forwarder.
    fn dynamic_parity_fixture(thread_everywhere: bool) -> Vec<(&'static str, String)> {
        let t = thread_everywhere;
        let tracker = format!(
            "pub struct IoTracker {{\n    inserts: AtomicU64,\n    deletes: AtomicU64,\n\
             \x20   epoch_pins: AtomicU64,\n}}\n\
             impl IoTracker {{\n\
                 pub fn count_inserts(&self, n: u64) {{ self.inserts.fetch_add(n, O); }}\n\
                 pub fn count_deletes(&self, n: u64) {{ self.deletes.fetch_add(n, O); }}\n\
                 pub fn count_epoch_pins(&self, n: u64) {{ self.epoch_pins.fetch_add(n, O); }}\n\
                 pub fn snapshot(&self) -> TrackerSnapshot {{\n\
                     TrackerSnapshot {{ {} deletes: self.deletes.load(O), \
                      epoch_pins: self.epoch_pins.load(O) }}\n\
                 }}\n\
                 pub fn reset(&self) {{ {} self.deletes.store(0, O); \
                  self.epoch_pins.store(0, O); }}\n\
             }}\n\
             pub struct TrackerSnapshot {{\n{}    pub deletes: u64,\n    pub epoch_pins: u64,\n}}\n",
            if t { "inserts: self.inserts.load(O)," } else { "" },
            if t { "self.inserts.store(0, O);" } else { "" },
            if t { "    pub inserts: u64,\n" } else { "" },
        );
        let stats = format!(
            "pub struct QueryStats {{\n    pub inserts: u64,\n{}    pub epoch_pins: u64,\n}}\n\
             impl QueryStats {{\n\
                 fn from_snapshot(s: TrackerSnapshot) -> Self {{\n\
                     QueryStats {{ inserts: s.inserts, {} epoch_pins: s.epoch_pins }}\n\
                 }}\n\
                 pub fn accumulate(&mut self, o: &QueryStats) {{\n\
                     self.inserts += o.inserts;\n{}\
                     self.epoch_pins += o.epoch_pins;\n\
                 }}\n\
             }}\n",
            if t { "    pub deletes: u64,\n" } else { "" },
            if t { "deletes: s.deletes," } else { "" },
            if t { "self.deletes += o.deletes;\n" } else { "" },
        );
        let context = format!(
            "impl QueryContext {{\n\
                 pub fn count_inserts(&self, n: u64) {{ self.t.count_inserts(n); }}\n\
                 pub fn count_deletes(&self, n: u64) {{ self.t.count_deletes(n); }}\n{}\
             }}\n",
            if t {
                "pub fn count_epoch_pins(&self, n: u64) { self.t.count_epoch_pins(n); }\n"
            } else {
                ""
            },
        );
        vec![
            ("crates/store/src/tracker.rs", tracker),
            ("crates/store/src/stats.rs", stats),
            ("crates/store/src/context.rs", context),
            ("crates/store/src/lib.rs", CLEAN.to_owned()),
        ]
    }

    #[test]
    fn l4_flags_half_threaded_dynamic_lifecycle_counters() {
        let sources = dynamic_parity_fixture(false);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        let hits: Vec<String> = diags_for(&refs)
            .into_iter()
            .filter(|d| d.rule == rules::COUNTER_PARITY)
            .map(|d| d.message)
            .collect();
        assert!(
            hits.iter().any(|m| m.contains("`inserts` is missing from snapshot()")),
            "{hits:?}"
        );
        assert!(hits.iter().any(|m| m.contains("`inserts` is missing from reset()")), "{hits:?}");
        assert!(
            hits.iter().any(
                |m| m.contains("`deletes` is not threaded through") && m.contains("QueryStats")
            ),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|m| m.contains("`epoch_pins` is not threaded through")
                && m.contains("QueryContext")),
            "{hits:?}"
        );
    }

    #[test]
    fn l4_accepts_fully_threaded_dynamic_lifecycle_counters() {
        let sources = dynamic_parity_fixture(true);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        assert_eq!(rules_hit(&refs, rules::COUNTER_PARITY), vec![]);
    }

    /// Fixture store files with a per-shard `CacheCounts` whose `stale`
    /// field is (optionally) dropped by the `Add` impl and the pool.
    fn cache_fixture(thread_everywhere: bool) -> Vec<(&'static str, String)> {
        let tracker = format!(
            "pub struct CacheCounts {{\n    pub hits: u64,\n    pub stale: u64,\n}}\n\
             impl std::ops::Add for CacheCounts {{\n\
                 type Output = CacheCounts;\n\
                 fn add(self, o: CacheCounts) -> CacheCounts {{\n\
                     CacheCounts {{ hits: self.hits + o.hits, {} }}\n\
                 }}\n\
             }}\n",
            if thread_everywhere { "stale: self.stale + o.stale" } else { "..self" },
        );
        let pool = format!(
            "impl BufferPool {{\n\
                 fn touch(&self) {{ self.totals.hits += 1; {} }}\n\
             }}\n",
            if thread_everywhere { "self.totals.stale += 1;" } else { "" },
        );
        vec![
            ("crates/store/src/tracker.rs", tracker),
            ("crates/store/src/pool.rs", pool),
            ("crates/store/src/lib.rs", CLEAN.to_owned()),
        ]
    }

    #[test]
    fn l4_flags_cache_fields_dropped_by_shard_summing() {
        let sources = cache_fixture(false);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        let hits: Vec<String> = diags_for(&refs)
            .into_iter()
            .filter(|d| d.rule == rules::COUNTER_PARITY)
            .map(|d| d.message)
            .collect();
        assert!(
            hits.iter().any(|m| m.contains("`stale` is missing from the Add impl")),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|m| m.contains("`stale` is never maintained by the buffer pool")),
            "{hits:?}"
        );
        assert!(!hits.iter().any(|m| m.contains("`hits`")), "{hits:?}");
    }

    #[test]
    fn l4_accepts_fully_summed_cache_fields() {
        let sources = cache_fixture(true);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        assert_eq!(rules_hit(&refs, rules::COUNTER_PARITY), vec![]);
    }

    #[test]
    fn l5_requires_safety_comments_and_forbid() {
        let bad = "pub fn f(p: *const u8) -> u8 {\n\
                unsafe { *p }\n\
            }\n";
        assert_eq!(rules_hit(&[("crates/u/src/lib.rs", bad)], rules::UNSAFE_HYGIENE), vec![2]);
        // An unsafe-free crate without the forbid attribute is flagged at
        // its lib.rs.
        let no_forbid = "pub fn id(x: u64) -> u64 {\n    x\n}\n";
        assert_eq!(
            rules_hit(&[("crates/u/src/lib.rs", no_forbid)], rules::UNSAFE_HYGIENE),
            vec![1]
        );
    }

    #[test]
    fn l5_accepts_documented_unsafe_and_forbid_crates() {
        let good = "// SAFETY: `p` is valid for reads by the caller's contract.\n\
            pub unsafe fn f(p: *const u8) -> u8 {\n\
                // SAFETY: see function contract above.\n\
                unsafe { *p }\n\
            }\n";
        assert_eq!(rules_hit(&[("crates/u/src/lib.rs", good)], rules::UNSAFE_HYGIENE), vec![]);
        assert_eq!(rules_hit(&[("crates/u/src/lib.rs", CLEAN)], rules::UNSAFE_HYGIENE), vec![]);
    }

    #[test]
    fn l6_requires_experiment_sections() {
        let ws = Workspace::from_sources(
            &[
                ("crates/bench/src/bin/exp_documented.rs", CLEAN),
                ("crates/bench/src/bin/exp_orphan.rs", CLEAN),
                ("crates/bench/src/lib.rs", CLEAN),
            ],
            Some("## exp_documented\nMeasures things.\n"),
        );
        let hits: Vec<String> = check(&ws)
            .into_iter()
            .filter(|d| d.rule == rules::EXPERIMENT_DOCS)
            .map(|d| d.file)
            .collect();
        assert_eq!(hits, vec!["crates/bench/src/bin/exp_orphan.rs".to_owned()]);
    }

    #[test]
    fn l7_flags_store_unwraps_outside_tests() {
        let bad = "#![forbid(unsafe_code)]\n\
            fn f(file: &std::fs::File, m: &std::sync::Mutex<u64>) -> u64 {\n\
                file.sync_all().unwrap();\n\
                let n = file.metadata().expect(\"stat\");\n\
                let g = m.lock().unwrap();\n\
                *g + n.len()\n\
            }\n\
            #[cfg(test)]\n\
            mod tests {\n\
                fn t() {\n\
                    std::fs::read(\"x\").unwrap();\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/store/src/file.rs", bad)], rules::STORE_ERROR_HYGIENE),
            vec![3, 4, 5]
        );
        // Lock-poisoning sites get the targeted recovery hint.
        let msgs: Vec<String> = diags_for(&[("crates/store/src/file.rs", bad)])
            .into_iter()
            .filter(|d| d.rule == rules::STORE_ERROR_HYGIENE && d.line == 5)
            .map(|d| d.message)
            .collect();
        assert!(msgs.iter().any(|m| m.contains("PoisonError::into_inner")), "{msgs:?}");
    }

    #[test]
    fn l7_allows_recovery_idioms_waivers_and_other_crates() {
        let good = "#![forbid(unsafe_code)]\n\
            use std::sync::PoisonError;\n\
            fn f(m: &std::sync::Mutex<u64>) -> u64 {\n\
                let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
                let n = std::fs::read(\"x\").unwrap_or_default().len() as u64;\n\
                *g + n\n\
            }\n\
            fn waived(m: &std::sync::Mutex<u64>) -> u64 {\n\
                *m.lock().unwrap() // lint-allow: store-error-hygiene demo of a justified panic\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/store/src/pool.rs", good)], rules::STORE_ERROR_HYGIENE),
            vec![]
        );
        // The same unwraps outside crates/store are not this rule's
        // business.
        let elsewhere = "#![forbid(unsafe_code)]\n\
            fn f() {\n\
                std::fs::read(\"x\").unwrap();\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/query/src/lib.rs", elsewhere)], rules::STORE_ERROR_HYGIENE),
            vec![]
        );
    }

    #[test]
    fn waiver_syntax_is_loud_and_unwaivable() {
        let bad = "#![forbid(unsafe_code)]\n\
            // lint-allow: float-ordering\n\
            // lint-allow: no-such-rule because reasons\n\
            // lint-scope: no_such_scope\n\
            fn f() {}\n";
        assert_eq!(rules_hit(&[("crates/q/src/lib.rs", bad)], rules::WAIVER_SYNTAX), vec![2, 3, 4]);
    }
}
