//! The rule set. Each rule guards an invariant introduced by an
//! earlier PR; see DESIGN.md §10 for the full rationale table.

use crate::model::{self, LockOp, WorkspaceModel, LOCK_CLASSES};
use crate::source::{directive_words, find_word, SourceFile};
use crate::{Diagnostic, Workspace};

pub const FLOAT_ORDERING: &str = "float-ordering";
pub const NO_ALLOC_KERNEL: &str = "no-alloc-kernel";
pub const STORAGE_BOUNDARY: &str = "storage-boundary";
pub const COUNTER_PARITY: &str = "counter-parity";
pub const UNSAFE_HYGIENE: &str = "unsafe-hygiene";
pub const EXPERIMENT_DOCS: &str = "experiment-docs";
pub const STORE_ERROR_HYGIENE: &str = "store-error-hygiene";
pub const LOCK_ORDER: &str = "lock-order";
pub const NO_BLOCKING_UNDER_LOCK: &str = "no-blocking-under-lock";
pub const ATOMICS_DISCIPLINE: &str = "atomics-discipline";
pub const EPOCH_PROTOCOL: &str = "epoch-protocol";
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Rule ids a waiver may name. `waiver-syntax` is listed so a directive
/// naming it parses, but the engine never suppresses it.
pub const KNOWN_RULES: &[&str] = &[
    FLOAT_ORDERING,
    NO_ALLOC_KERNEL,
    STORAGE_BOUNDARY,
    COUNTER_PARITY,
    UNSAFE_HYGIENE,
    EXPERIMENT_DOCS,
    STORE_ERROR_HYGIENE,
    LOCK_ORDER,
    NO_BLOCKING_UNDER_LOCK,
    ATOMICS_DISCIPLINE,
    EPOCH_PROTOCOL,
    WAIVER_SYNTAX,
];

/// Scope tags `lint-scope:` may declare.
pub const KNOWN_SCOPES: &[&str] = &["no_alloc"];

pub trait Rule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    /// Phase two: report violations against the prebuilt cross-file
    /// model (phase one, built once per run in [`crate::check`]).
    fn check(&self, ws: &Workspace, model: &WorkspaceModel, out: &mut Vec<Diagnostic>);
}

/// Every rule, in the order they run.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatOrdering),
        Box::new(NoAllocKernel),
        Box::new(StorageBoundary),
        Box::new(CounterParity),
        Box::new(UnsafeHygiene),
        Box::new(ExperimentDocs),
        Box::new(StoreErrorHygiene),
        Box::new(LockOrder),
        Box::new(NoBlockingUnderLock),
        Box::new(AtomicsDiscipline),
        Box::new(EpochProtocol),
        Box::new(WaiverSyntax),
    ]
}

fn diag(f: &SourceFile, line: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic { file: f.rel.clone(), line, rule, message }
}

/// Byte index just past the `)` matching the `(` at `open`, scanning
/// blanked code (so literal parens are already gone).
pub(crate) fn skip_parens(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Number of top-level commas between the parens opening at `open`.
fn toplevel_commas(code: &str, open: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut commas = 0usize;
    for &b in bytes.iter().skip(open) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' if depth == 1 => break,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 1 => commas += 1,
            _ => {}
        }
    }
    commas
}

fn skip_ws(code: &str, mut i: usize) -> usize {
    let bytes = code.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Whether the identifier-ish token at `at..at+len` starts at an
/// identifier boundary (so `SmallVec::new` doesn't match `Vec::new`).
fn starts_at_boundary(code: &str, at: usize) -> bool {
    at == 0 || {
        let c = code.as_bytes()[at - 1] as char;
        !(c.is_ascii_alphanumeric() || c == '_')
    }
}

/// Occurrences of `token` in `code` honouring a leading identifier
/// boundary when the token starts with an identifier character.
fn token_positions<'a>(code: &'a str, token: &'a str) -> impl Iterator<Item = usize> + 'a {
    let needs_boundary =
        token.chars().next().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while from <= code.len() {
            let rel = code[from..].find(token)?;
            let at = from + rel;
            from = at + token.len().max(1);
            if !needs_boundary || starts_at_boundary(code, at) {
                return Some(at);
            }
        }
        None
    })
}

/// The `{ … }` body (and the byte offset of its header) of the first
/// item whose header contains `header` — good enough for the handful of
/// store items L4 cross-references.
fn item_body<'a>(code: &'a str, header: &str) -> Option<(usize, &'a str)> {
    let at = code.find(header)?;
    let open = at + code[at..].find('{')?;
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((at, &code[open + 1..i]));
                }
            }
            _ => {}
        }
    }
    None
}

/// The word immediately before byte `at`, if any.
fn word_before(code: &str, at: usize) -> Option<&str> {
    let head = code[..at].trim_end();
    let start = head.rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).map_or(0, |i| i + 1);
    if start < head.len() {
        Some(&head[start..])
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// L1: float-ordering
// ---------------------------------------------------------------------

/// PR 2 made every query-path comparator NaN-safe with `total_cmp`
/// after `partial_cmp(..).unwrap()` panicked on a NaN distance. This
/// rule keeps the unsafe form from creeping back in.
struct FloatOrdering;

impl Rule for FloatOrdering {
    fn id(&self) -> &'static str {
        FLOAT_ORDERING
    }

    fn description(&self) -> &'static str {
        "comparators must use total_cmp, never partial_cmp + unwrap/unwrap_or(Ordering)"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            for at in find_word(&f.code, "partial_cmp") {
                // Definitions of `fn partial_cmp` (PartialOrd impls) are
                // not call sites.
                if word_before(&f.code, at) == Some("fn") {
                    continue;
                }
                let after_name = skip_ws(&f.code, at + "partial_cmp".len());
                if f.code.as_bytes().get(after_name) != Some(&b'(') {
                    continue;
                }
                let Some(close) = skip_parens(&f.code, after_name) else { continue };
                let rest = &f.code[skip_ws(&f.code, close)..];
                let bad = ["unwrap()", "expect("]
                    .iter()
                    .any(|m| rest.strip_prefix('.').is_some_and(|r| r.trim_start().starts_with(m)))
                    || ["unwrap_or(", "unwrap_or_else("].iter().any(|m| {
                        rest.strip_prefix('.')
                            .and_then(|r| r.trim_start().strip_prefix(m))
                            .is_some_and(|args| args.contains("Ordering") || args.contains("Equal"))
                    });
                if bad {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        FLOAT_ORDERING,
                        "NaN-unsafe comparator: replace `partial_cmp(..).unwrap…` with \
                         `total_cmp` (or waive with a reason)"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L2: no-alloc-kernel
// ---------------------------------------------------------------------

/// The matching kernel (PR 2) is allocation-free in steady state; a
/// counting-allocator test proves it for the paths it exercises, and
/// this rule covers new code paths at review time. Files opt in with
/// `lint-scope: no_alloc`; constructors carry function-level waivers.
struct NoAllocKernel;

/// Files that must stay in the `no_alloc` scope (deleting the tag is
/// itself a violation).
const REQUIRED_NO_ALLOC: &[&str] = &[
    "crates/setdist/src/engine.rs",
    "crates/setdist/src/hungarian.rs",
    "crates/setdist/src/simd.rs",
];

const ALLOC_TOKENS: &[&str] =
    &["Vec::new", "vec!", ".to_vec()", ".collect::<Vec", "Box::new", ".clone()", "String::new"];

impl Rule for NoAllocKernel {
    fn id(&self) -> &'static str {
        NO_ALLOC_KERNEL
    }

    fn description(&self) -> &'static str {
        "no allocation in files tagged `lint-scope: no_alloc` (the matching kernel)"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            let tagged = f.scopes.iter().any(|s| s == "no_alloc");
            if REQUIRED_NO_ALLOC.contains(&f.rel.as_str()) && !tagged {
                out.push(diag(
                    f,
                    1,
                    NO_ALLOC_KERNEL,
                    "kernel file must carry `lint-scope: no_alloc`".to_owned(),
                ));
            }
            if !tagged {
                continue;
            }
            for (i, line) in f.lines.iter().enumerate() {
                if line.in_cfg_test {
                    continue;
                }
                for tok in ALLOC_TOKENS {
                    if token_positions(&line.code, tok).next().is_some() {
                        out.push(diag(
                            f,
                            i + 1,
                            NO_ALLOC_KERNEL,
                            format!("`{tok}` allocates inside the no_alloc kernel scope"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L3: storage-boundary
// ---------------------------------------------------------------------

/// PR 1's layering rule: outside `crates/store`, page reads and cost
/// accounting flow through `QueryContext` (3-argument `access`,
/// 2-argument `pin`), never straight at a `BufferPool`/`IoTracker`.
struct StorageBoundary;

/// Tracker plumbing reserved for the buffer pool itself.
const TRACKER_PLUMBING: &[&str] =
    &[".record_pages(", ".record_hit(", ".record_miss(", ".record_eviction(", ".read_page("];

impl Rule for StorageBoundary {
    fn id(&self) -> &'static str {
        STORAGE_BOUNDARY
    }

    fn description(&self) -> &'static str {
        "outside crates/store, page access goes through QueryContext, not BufferPool/IoTracker"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            if f.rel.starts_with("crates/store/") {
                continue;
            }
            for ctor in ["IoTracker::new", "IoTracker::default", "IoTracker {"] {
                for at in token_positions(&f.code, ctor) {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        STORAGE_BOUNDARY,
                        "construct a QueryContext instead of a raw IoTracker".to_owned(),
                    ));
                }
            }
            for tok in TRACKER_PLUMBING {
                for at in token_positions(&f.code, tok) {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        STORAGE_BOUNDARY,
                        format!(
                            "`{}` is buffer-pool plumbing; record costs via QueryContext",
                            &tok[1..tok.len() - 1]
                        ),
                    ));
                }
            }
            // BufferPool::access/pin take a trailing `&IoTracker`; the
            // QueryContext wrappers don't. Arg count tells them apart.
            for (method, ctx_commas) in [("access", 2usize), ("pin", 1usize)] {
                for at in find_word(&f.code, method) {
                    if at == 0 || f.code.as_bytes()[at - 1] != b'.' {
                        continue;
                    }
                    let open = skip_ws(&f.code, at + method.len());
                    if f.code.as_bytes().get(open) != Some(&b'(') {
                        continue;
                    }
                    if toplevel_commas(&f.code, open) > ctx_commas {
                        out.push(diag(
                            f,
                            f.line_of(at),
                            STORAGE_BOUNDARY,
                            format!("direct BufferPool::{method} bypasses QueryContext accounting"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L4: counter-parity
// ---------------------------------------------------------------------

/// Both `pruned` (PR 2) and `filter_steps` (PR 3) initially landed
/// half-threaded: counted on `IoTracker` but dropped on the floor
/// before reaching `QueryStats`. This rule cross-references the three
/// store files so a new counter must be wired end to end.
struct CounterParity;

const TRACKER_RS: &str = "crates/store/src/tracker.rs";
const STATS_RS: &str = "crates/store/src/stats.rs";
const CONTEXT_RS: &str = "crates/store/src/context.rs";
const POOL_RS: &str = "crates/store/src/pool.rs";

impl Rule for CounterParity {
    fn id(&self) -> &'static str {
        COUNTER_PARITY
    }

    fn description(&self) -> &'static str {
        "every IoTracker counter is threaded through snapshot/reset, QueryStats and QueryContext"
    }

    fn check(&self, ws: &Workspace, model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        let Some(tracker) = ws.file(TRACKER_RS) else { return };
        let stats = ws.file(STATS_RS);
        let context = ws.file(CONTEXT_RS);

        // The field lists come from the phase-one counter model, which
        // parses the struct bodies — a newly declared counter is under
        // parity enforcement the moment it exists, with no list to
        // update by hand.
        let counters = &model.counters;

        // The buffer pool keeps one `CacheCounts` per lock shard and
        // sums them with `Add` into `PoolStats`, so a field that misses
        // either side silently reads zero exactly when the pool is
        // sharded — the concurrency configuration the tests exercise
        // least. Cross-reference every field against both.
        {
            let pool = ws.file(POOL_RS);
            let add_body = item_body(&tracker.code, "fn add").map(|(_, b)| b);
            for (field, line0) in &counters.cache_fields {
                let line = line0 + 1;
                if add_body.is_some_and(|b| find_word(b, field).next().is_none()) {
                    out.push(diag(
                        tracker,
                        line,
                        COUNTER_PARITY,
                        format!(
                            "CacheCounts field `{field}` is missing from the Add impl, \
                             so per-shard totals would drop it"
                        ),
                    ));
                }
                if pool.is_some_and(|p| find_word(&p.code, field).next().is_none()) {
                    out.push(diag(
                        tracker,
                        line,
                        COUNTER_PARITY,
                        format!(
                            "CacheCounts field `{field}` is never maintained by the \
                             buffer pool's shards"
                        ),
                    ));
                }
            }
        }

        let snapshot_body = item_body(&tracker.code, "fn snapshot").map(|(_, b)| b);
        let reset_body = item_body(&tracker.code, "fn reset").map(|(_, b)| b);
        for (field, line0) in &counters.tracker_fields {
            let line = line0 + 1;
            for (body, what) in [(snapshot_body, "snapshot()"), (reset_body, "reset()")] {
                if body.is_some_and(|b| find_word(b, field).next().is_none()) {
                    out.push(diag(
                        tracker,
                        line,
                        COUNTER_PARITY,
                        format!("IoTracker field `{field}` is missing from {what}"),
                    ));
                }
            }
            // A counter nothing can increment is dead weight that reads
            // zero forever: every field needs a `count_<field>` or
            // `record_<field>` accessor (singular forms accepted, e.g.
            // `hits` → `record_hit`).
            let mut names = vec![format!("count_{field}"), format!("record_{field}")];
            if let Some(stem) = field.strip_suffix("es") {
                names.push(format!("record_{stem}"));
                names.push(format!("count_{stem}"));
            }
            if let Some(stem) = field.strip_suffix('s') {
                names.push(format!("record_{stem}"));
                names.push(format!("count_{stem}"));
            }
            if !names.iter().any(|n| tracker.code.contains(&format!("fn {n}("))) {
                out.push(diag(
                    tracker,
                    line,
                    COUNTER_PARITY,
                    format!(
                        "IoTracker field `{field}` has no count_/record_ accessor, \
                         so nothing can ever increment it"
                    ),
                ));
            }
        }

        // Every `count_X` accessor must surface `X` all the way to
        // QueryStats and the QueryContext forwarders.
        let stats_struct = stats.and_then(|s| item_body(&s.code, "struct QueryStats"));
        let from_snap = stats.and_then(|s| item_body(&s.code, "fn from_snapshot"));
        let accumulate = stats.and_then(|s| item_body(&s.code, "fn accumulate"));
        let snap_struct = item_body(&tracker.code, "struct TrackerSnapshot");
        for at in token_positions(&tracker.code, "pub fn count_") {
            let name_start = at + "pub fn ".len();
            let rest = &tracker.code[name_start..];
            let name_end =
                rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(rest.len());
            let method = &rest[..name_end];
            let counter = &method["count_".len()..];
            let line = tracker.line_of(at);
            let mut missing: Vec<&str> = Vec::new();
            if snap_struct.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("TrackerSnapshot");
            }
            if stats_struct.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("QueryStats");
            }
            if from_snap.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("QueryStats::from_snapshot");
            }
            if accumulate.as_ref().is_some_and(|(_, b)| find_word(b, counter).next().is_none()) {
                missing.push("QueryStats::accumulate");
            }
            if context.is_some_and(|c| !c.code.contains(&format!("fn {method}"))) {
                missing.push("QueryContext");
            }
            if !missing.is_empty() {
                out.push(diag(
                    tracker,
                    line,
                    COUNTER_PARITY,
                    format!("counter `{counter}` is not threaded through {}", missing.join(", ")),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L5: unsafe-hygiene
// ---------------------------------------------------------------------

/// Unsafe stays auditable: each `unsafe` keyword carries a `SAFETY:`
/// comment, and crates that need none say so with
/// `#![forbid(unsafe_code)]` so a future block can't land silently.
struct UnsafeHygiene;

impl Rule for UnsafeHygiene {
    fn id(&self) -> &'static str {
        UNSAFE_HYGIENE
    }

    fn description(&self) -> &'static str {
        "`unsafe` requires a SAFETY: comment; unsafe-free crates declare forbid(unsafe_code)"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        let mut unsafe_crates: Vec<&str> = Vec::new();
        for f in &ws.files {
            let mut file_has_unsafe = false;
            for (i, line) in f.lines.iter().enumerate() {
                if find_word(&line.code, "unsafe").next().is_none() {
                    continue;
                }
                file_has_unsafe = true;
                if !f.comment_block_contains(i + 1, "SAFETY:") {
                    out.push(diag(
                        f,
                        i + 1,
                        UNSAFE_HYGIENE,
                        "`unsafe` without a `// SAFETY:` comment on or above it".to_owned(),
                    ));
                }
            }
            if file_has_unsafe {
                if let Some(name) = src_crate(&f.rel) {
                    unsafe_crates.push(name);
                }
            }
        }
        for f in &ws.files {
            let Some(name) = src_crate(&f.rel) else { continue };
            if f.rel != format!("crates/{name}/src/lib.rs") {
                continue;
            }
            if !unsafe_crates.contains(&name) && !f.code.contains("forbid(unsafe_code)") {
                out.push(diag(
                    f,
                    1,
                    UNSAFE_HYGIENE,
                    format!("crate `{name}` uses no unsafe: declare #![forbid(unsafe_code)]"),
                ));
            }
        }
    }
}

/// `crates/<name>/src/…` → `<name>`.
fn src_crate(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

// ---------------------------------------------------------------------
// L6: experiment-docs
// ---------------------------------------------------------------------

/// Every experiment binary must be written up: an `exp_*` binary nobody
/// can interpret is dead weight in the reproduction.
struct ExperimentDocs;

impl Rule for ExperimentDocs {
    fn id(&self) -> &'static str {
        EXPERIMENT_DOCS
    }

    fn description(&self) -> &'static str {
        "every crates/bench/src/bin/exp_*.rs binary is documented in EXPERIMENTS.md"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            let Some(name) = f.rel.strip_prefix("crates/bench/src/bin/") else { continue };
            if !name.starts_with("exp_") {
                continue;
            }
            let stem = name.trim_end_matches(".rs");
            let documented = ws.experiments_md.as_deref().is_some_and(|md| md.contains(stem));
            if !documented {
                out.push(diag(
                    f,
                    1,
                    EXPERIMENT_DOCS,
                    format!("experiment binary `{stem}` has no section in EXPERIMENTS.md"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L7: store-error-hygiene
// ---------------------------------------------------------------------

/// The fault-injection PR made every storage fallibility typed: page
/// stores return `StoreResult`, lock poisoning is recovered with
/// `unwrap_or_else(PoisonError::into_inner)`, and callers see
/// `StoreError` instead of a panic. A single `.unwrap()` on an I/O path
/// inside `crates/store` would turn an injectable, testable fault back
/// into an abort, so none are allowed outside `#[cfg(test)]` code.
struct StoreErrorHygiene;

impl Rule for StoreErrorHygiene {
    fn id(&self) -> &'static str {
        STORE_ERROR_HYGIENE
    }

    fn description(&self) -> &'static str {
        "store/query/index library code propagates typed errors: no unwrap/expect outside tests"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        // Promoted from crates/store alone once the query and index
        // layers grew their own lock- and I/O-bearing paths: everything
        // downstream of a page store can see an injected fault, so the
        // same no-panic standard applies. Integration tests under
        // `tests/` are all test code; only shipped sources are held to
        // it.
        const COVERED: &[&str] = &["crates/store/src/", "crates/query/src/", "crates/index/src/"];
        for f in &ws.files {
            if !COVERED.iter().any(|p| f.rel.starts_with(p)) {
                continue;
            }
            for (i, line) in f.lines.iter().enumerate() {
                if line.in_cfg_test {
                    continue;
                }
                for tok in [".unwrap()", ".expect("] {
                    for at in token_positions(&line.code, tok) {
                        let on_lock = line.code[..at].trim_end().ends_with(".lock()");
                        let message = if on_lock {
                            format!(
                                "panicking on a poisoned lock: recover with \
                                 `lock().unwrap_or_else(PoisonError::into_inner)` \
                                 instead of `{tok}`"
                            )
                        } else {
                            format!(
                                "`{tok}` in library code outside tests: propagate a \
                                 typed error (or waive with a reason)"
                            )
                        };
                        out.push(diag(f, i + 1, STORE_ERROR_HYGIENE, message));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L8: lock-order
// ---------------------------------------------------------------------

/// The concurrency PRs (6–9) established one global acquisition order
/// over the named lock classes (writer mutex, before the epoch RwLock,
/// before the store-internal locks, before the pool shards). Two code
/// paths that acquire two classes in opposite orders can deadlock under
/// exactly the concurrent load the tests exercise least, so any cycle
/// in the observed acquisition-order graph is an error — and the hot
/// pool-shard locks must never nest inside themselves at all.
struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        LOCK_ORDER
    }

    fn description(&self) -> &'static str {
        "the acquisition-order graph over named lock classes stays acyclic; shard locks never self-nest"
    }

    fn check(&self, ws: &Workspace, model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for e in model.edges.iter().filter(|e| !e.in_cfg_test) {
            let Some(f) = ws.files.get(e.file) else { continue };
            let (from, to) = (&LOCK_CLASSES[e.from], &LOCK_CLASSES[e.to]);
            if e.from == e.to {
                let detail = if from.hot {
                    "shard-lock self-nesting: a second shard can map to the same stripe \
                     and deadlock"
                } else {
                    "re-acquiring a held lock class self-deadlocks on the same instance"
                };
                out.push(diag(
                    f,
                    e.line + 1,
                    LOCK_ORDER,
                    format!("`{}` acquired while already held — {detail}", from.name),
                ));
                continue;
            }
            // A cycle exists iff some rank-decreasing edge closes a loop
            // back to itself (rank-increasing edges alone are acyclic by
            // construction). Anchoring the report on the inverted edge
            // makes it the waivable site.
            if from.rank > to.rank && model.has_path(e.to, e.from) {
                out.push(diag(
                    f,
                    e.line + 1,
                    LOCK_ORDER,
                    format!(
                        "lock-order cycle: acquiring `{}` (rank {}) while holding `{}` \
                         (rank {}) inverts the workspace acquisition order — deadlock risk",
                        to.name, to.rank, from.name, from.rank
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L9: no-blocking-under-lock
// ---------------------------------------------------------------------

/// The pool-shard mutexes sit on every page access of every query
/// thread: a critical section that does page I/O, saves an index, or
/// allocates a page-sized buffer turns one slow store into a stall for
/// every thread hashing to that stripe. Hot classes therefore admit
/// only pointer work while held.
struct NoBlockingUnderLock;

/// Calls that do (or can do) I/O-sized work.
const BLOCKING_CALLS: &[&str] = &[
    ".read_into(",
    ".write_page(",
    ".read_page(",
    ".sync(",
    ".sync_all(",
    ".sync_data(",
    ".set_len(",
    ".flush(",
    ".persist(",
    "save_",
];

/// Allocation-heavy constructors (Arc/Rc clones are fine; page-sized
/// buffers are not).
const HEAVY_ALLOC: &[&str] = &["vec!", "Vec::new", "Vec::with_capacity", ".to_vec()", "Box::new"];

impl Rule for NoBlockingUnderLock {
    fn id(&self) -> &'static str {
        NO_BLOCKING_UNDER_LOCK
    }

    fn description(&self) -> &'static str {
        "no page I/O, save_*, heavy allocation, or second lock while a hot-class guard is live"
    }

    fn check(&self, ws: &Workspace, model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for a in &model.acquisitions {
            if !LOCK_CLASSES[a.class].hot || a.in_cfg_test {
                continue;
            }
            let Some(f) = ws.files.get(a.file) else { continue };
            let holder = LOCK_CLASSES[a.class].name;
            for i in a.live_from..=a.live_to.min(f.lines.len() - 1) {
                let line = &f.lines[i];
                for tok in BLOCKING_CALLS.iter().chain(HEAVY_ALLOC) {
                    if token_positions(&line.code, tok).next().is_some() {
                        out.push(diag(
                            f,
                            i + 1,
                            NO_BLOCKING_UNDER_LOCK,
                            format!(
                                "`{}` while the hot `{holder}` lock is held (acquired on \
                                 line {}): move the work outside the critical section",
                                tok.trim_start_matches('.').trim_end_matches('('),
                                a.line + 1
                            ),
                        ));
                    }
                }
            }
            // Taking any second lock under a hot guard blocks every
            // thread on this stripe behind the other lock's holder.
            for inner in &model.acquisitions {
                if inner.file == a.file
                    && inner.at > a.at
                    && inner.line >= a.live_from
                    && inner.line <= a.live_to
                {
                    out.push(diag(
                        f,
                        inner.line + 1,
                        NO_BLOCKING_UNDER_LOCK,
                        format!(
                            "acquiring `{}` while the hot `{holder}` lock is held \
                             (acquired on line {})",
                            LOCK_CLASSES[inner.class].name,
                            a.line + 1
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L10: atomics-discipline
// ---------------------------------------------------------------------

/// The statistics counters are deliberately `Relaxed` — they count, they
/// don't synchronize; publication ordering comes from the locks and the
/// epoch RwLock. A stray `SeqCst` on a counter taxes every hot-path
/// increment for nothing, and a load-bearing `Acquire`/`Release` that
/// *does* synchronize deserves the same visible justification that
/// `unsafe` blocks carry. Mirroring `unsafe-hygiene`: any non-Relaxed
/// ordering needs an adjacent `// ORDERING:` comment saying what it
/// orders, and the tracker counters must stay Relaxed outright.
struct AtomicsDiscipline;

impl Rule for AtomicsDiscipline {
    fn id(&self) -> &'static str {
        ATOMICS_DISCIPLINE
    }

    fn description(&self) -> &'static str {
        "counters use Relaxed; any SeqCst/Acquire/Release needs an `// ORDERING:` justification"
    }

    fn check(&self, ws: &Workspace, model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for op in &model.atomics {
            let Some(f) = ws.files.get(op.file) else { continue };
            let non_relaxed: Vec<&str> = op
                .orderings
                .iter()
                .filter(|o| o.as_str() != "Relaxed")
                .map(String::as_str)
                .collect();
            if non_relaxed.is_empty() {
                continue;
            }
            let counter =
                op.receiver.as_deref().is_some_and(|r| model.counters.is_tracker_counter(r));
            if counter {
                out.push(diag(
                    f,
                    op.line + 1,
                    ATOMICS_DISCIPLINE,
                    format!(
                        "tracker counter `{}` uses Ordering::{} — statistics counters \
                         are Relaxed by design (locks provide all publication ordering)",
                        op.receiver.as_deref().unwrap_or("?"),
                        non_relaxed.join("/"),
                    ),
                ));
            } else if !f.comment_block_contains(op.line + 1, "ORDERING:") {
                out.push(diag(
                    f,
                    op.line + 1,
                    ATOMICS_DISCIPLINE,
                    format!(
                        "`{}` with Ordering::{} has no `// ORDERING:` comment \
                         justifying the stronger-than-Relaxed ordering",
                        op.method,
                        non_relaxed.join("/"),
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// L11: epoch-protocol
// ---------------------------------------------------------------------

/// The dynamic-index snapshot protocol (PR 9) has exactly two safe
/// doors: readers reach an `IndexEpoch` only through `pin()` (which
/// clones the published `Arc` under the epoch RwLock), and `publish()`
/// swaps the pointer only while the writer mutex is held so generations
/// publish in order. Code that constructs an epoch elsewhere, or
/// touches the `published` slot directly, or writes the slot without
/// the writer lock, silently breaks snapshot isolation.
struct EpochProtocol;

const EPOCH_RS: &str = "crates/query/src/epoch.rs";

impl Rule for EpochProtocol {
    fn id(&self) -> &'static str {
        EPOCH_PROTOCOL
    }

    fn description(&self) -> &'static str {
        "IndexEpoch is reached via pin() outside epoch.rs; publishing requires the writer lock"
    }

    fn check(&self, ws: &Workspace, model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        let Some(writer) = model::class_by_name("writer-mutex") else { return };
        let Some(epoch) = model::class_by_name("epoch-rwlock") else { return };
        for (fi, f) in ws.files.iter().enumerate() {
            if f.rel == EPOCH_RS {
                // Inside the module: every write acquisition of the
                // published slot must happen under a live writer-mutex
                // guard, or generations can publish out of order.
                for a in &model.acquisitions {
                    if a.file != fi || a.class != epoch || a.op != LockOp::Write || a.in_cfg_test {
                        continue;
                    }
                    let held = model.acquisitions.iter().any(|w| {
                        w.file == fi
                            && w.class == writer
                            && w.at < a.at
                            && w.live_from <= a.line
                            && a.line <= w.live_to
                    });
                    if !held {
                        out.push(diag(
                            f,
                            a.line + 1,
                            EPOCH_PROTOCOL,
                            "publishing an epoch (write-locking `published`) without \
                             holding the writer mutex: generations can publish out of order"
                                .to_owned(),
                        ));
                    }
                }
                continue;
            }
            // Outside the module: no constructing epochs, no reaching
            // the published slot. Mentioning the *type* (signatures,
            // `Arc<IndexEpoch>` fields) is fine.
            for at in find_word(&f.code, "IndexEpoch") {
                let rest = &f.code[at + "IndexEpoch".len()..];
                let next = rest.trim_start().chars().next();
                let construct = next == Some('{')
                    || rest.trim_start().starts_with("::new(")
                    || rest.trim_start().starts_with("::default(");
                if construct {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        EPOCH_PROTOCOL,
                        "IndexEpoch constructed outside epoch.rs: snapshots are built \
                         and published only by the writer path"
                            .to_owned(),
                    ));
                }
            }
            for at in token_positions(&f.code, ".published") {
                // Word boundary: `.published_generation(…)` is an
                // accessor, not the slot.
                let end = at + ".published".len();
                let boundary = f.code[end..]
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
                if boundary {
                    out.push(diag(
                        f,
                        f.line_of(at),
                        EPOCH_PROTOCOL,
                        "direct access to the published-epoch slot outside epoch.rs: \
                         readers go through pin()"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Meta: waiver-syntax
// ---------------------------------------------------------------------

/// A waiver that doesn't parse silently suppresses nothing — which
/// looks exactly like working enforcement. This meta-rule makes
/// malformed or unknown directives loud, and is itself unwaivable.
struct WaiverSyntax;

impl Rule for WaiverSyntax {
    fn id(&self) -> &'static str {
        WAIVER_SYNTAX
    }

    fn description(&self) -> &'static str {
        "lint-allow/lint-scope directives must parse and name known rules/scopes"
    }

    fn check(&self, ws: &Workspace, _model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        for f in &ws.files {
            for e in &f.directive_errors {
                out.push(diag(f, e.line, WAIVER_SYNTAX, e.message.clone()));
            }
            for w in &f.waivers {
                if !KNOWN_RULES.contains(&w.rule.as_str()) {
                    out.push(diag(
                        f,
                        w.first_line,
                        WAIVER_SYNTAX,
                        format!("lint-allow names unknown rule `{}`", w.rule),
                    ));
                }
            }
            for (i, line) in f.lines.iter().enumerate() {
                if let Some(words) = directive_words(&line.comment, "lint-scope:") {
                    if let Some(tag) = words.first() {
                        if !KNOWN_SCOPES.contains(&tag.as_str()) {
                            out.push(diag(
                                f,
                                i + 1,
                                WAIVER_SYNTAX,
                                format!("lint-scope names unknown scope `{tag}`"),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{check, rules, Workspace};

    fn diags_for(sources: &[(&str, &str)]) -> Vec<crate::Diagnostic> {
        check(&Workspace::from_sources(sources, None))
    }

    fn rules_hit(sources: &[(&str, &str)], rule: &str) -> Vec<usize> {
        diags_for(sources).iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
    }

    /// A minimal clean file so fixtures don't trip unrelated rules.
    const CLEAN: &str = "#![forbid(unsafe_code)]\npub fn id(x: u64) -> u64 {\n    x\n}\n";

    #[test]
    fn l1_flags_unwrap_and_unwrap_or_ordering_variants() {
        let bad = "#![forbid(unsafe_code)]\n\
            fn s(v: &mut [f64]) {\n\
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                v.sort_by(|a, b| {\n\
                    a.partial_cmp(b)\n\
                        .unwrap()\n\
                });\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/q/src/lib.rs", bad)], rules::FLOAT_ORDERING),
            vec![3, 4, 6]
        );
    }

    #[test]
    fn l1_allows_total_cmp_handled_options_and_trait_impls() {
        let good = "#![forbid(unsafe_code)]\n\
            use std::cmp::Ordering;\n\
            struct W(f64);\n\
            impl PartialOrd for W {\n\
                fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                    Some(self.0.total_cmp(&o.0))\n\
                }\n\
            }\n\
            fn s(v: &mut [f64]) {\n\
                v.sort_by(|a, b| a.total_cmp(b));\n\
                let _ = 1.0f64.partial_cmp(&2.0).map(Ordering::reverse);\n\
                let _ = 1.0f64.partial_cmp(&2.0).unwrap_or(Ordering::Less.reverse());\n\
            }\n";
        // The `unwrap_or(Ordering::…)` on line 12 *is* a violation; the
        // rest must stay clean.
        assert_eq!(rules_hit(&[("crates/q/src/lib.rs", good)], rules::FLOAT_ORDERING), vec![12]);
    }

    #[test]
    fn l2_flags_allocation_only_in_tagged_files_outside_tests() {
        let tagged = "#![forbid(unsafe_code)]\n\
            // lint-scope: no_alloc\n\
            fn hot(n: usize) -> usize {\n\
                let v = vec![0u8; n];\n\
                let w = v.to_vec();\n\
                w.len()\n\
            }\n\
            #[cfg(test)]\n\
            mod tests {\n\
                fn t() {\n\
                    let _ = Vec::<u8>::new();\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/k/src/hot.rs", tagged)], rules::NO_ALLOC_KERNEL),
            vec![4, 5]
        );
        // Same content untagged: no scope, no findings.
        let untagged = tagged.replace("// lint-scope: no_alloc", "");
        assert_eq!(
            rules_hit(&[("crates/k/src/hot.rs", &untagged)], rules::NO_ALLOC_KERNEL),
            vec![]
        );
    }

    #[test]
    fn l2_requires_the_kernel_files_to_stay_tagged() {
        assert_eq!(
            rules_hit(&[("crates/setdist/src/engine.rs", CLEAN)], rules::NO_ALLOC_KERNEL),
            vec![1]
        );
    }

    #[test]
    fn l3_flags_raw_trackers_and_four_arg_access() {
        let bad = "#![forbid(unsafe_code)]\n\
            fn q(pool: &BufferPool, store: StoreId) {\n\
                let t = IoTracker::default();\n\
                pool.access(store, 0, 4, &t);\n\
                t.record_hit();\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/q/src/lib.rs", bad)], rules::STORAGE_BOUNDARY),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn l3_allows_query_context_calls_and_store_internals() {
        let good = "#![forbid(unsafe_code)]\n\
            fn q(ctx: &QueryContext, store: StoreId) {\n\
                ctx.access(store, 0, 4);\n\
                let _guard = ctx.pin(store, 7);\n\
                ctx.record_bytes(128);\n\
            }\n";
        assert_eq!(rules_hit(&[("crates/q/src/lib.rs", good)], rules::STORAGE_BOUNDARY), vec![]);
        // The same raw-pool code *inside* crates/store is the pool's own
        // business.
        let internal = "fn f(pool: &BufferPool, s: StoreId, t: &IoTracker) {\n\
            pool.access(s, 0, 1, t);\n\
        }\n";
        assert_eq!(
            rules_hit(
                &[("crates/store/src/pool.rs", internal), ("crates/store/src/lib.rs", CLEAN)],
                rules::STORAGE_BOUNDARY
            ),
            vec![]
        );
    }

    /// Fixture store files where `lost` is counted on the tracker but
    /// never threaded to QueryStats/QueryContext.
    fn parity_fixture(thread_everywhere: bool) -> Vec<(&'static str, String)> {
        let extra_field = "    lost: AtomicU64,\n";
        let tracker = format!(
            "pub struct IoTracker {{\n    refinements: AtomicU64,\n{extra_field}}}\n\
             impl IoTracker {{\n\
                 pub fn count_refinements(&self, n: u64) {{ self.refinements.fetch_add(n, O); }}\n\
                 pub fn count_lost(&self, n: u64) {{ self.lost.fetch_add(n, O); }}\n\
                 pub fn snapshot(&self) -> TrackerSnapshot {{\n\
                     TrackerSnapshot {{ refinements: self.refinements.load(O), {} }}\n\
                 }}\n\
                 pub fn reset(&self) {{ self.refinements.store(0, O); {} }}\n\
             }}\n\
             pub struct TrackerSnapshot {{\n    pub refinements: u64,\n{}}}\n",
            if thread_everywhere { "lost: self.lost.load(O)" } else { "" },
            if thread_everywhere { "self.lost.store(0, O);" } else { "" },
            if thread_everywhere { "    pub lost: u64,\n" } else { "" },
        );
        let stats = format!(
            "pub struct QueryStats {{\n    pub refinements: u64,\n{}}}\n\
             impl QueryStats {{\n\
                 fn from_snapshot(s: TrackerSnapshot) -> Self {{\n\
                     QueryStats {{ refinements: s.refinements, {} }}\n\
                 }}\n\
                 pub fn accumulate(&mut self, o: &QueryStats) {{\n\
                     self.refinements += o.refinements;\n{}\
                 }}\n\
             }}\n",
            if thread_everywhere { "    pub lost: u64,\n" } else { "" },
            if thread_everywhere { "lost: s.lost" } else { "" },
            if thread_everywhere { "self.lost += o.lost;\n" } else { "" },
        );
        let context = format!(
            "impl QueryContext {{\n\
                 pub fn count_refinements(&self, n: u64) {{ self.t.count_refinements(n); }}\n{}\
             }}\n",
            if thread_everywhere {
                "pub fn count_lost(&self, n: u64) { self.t.count_lost(n); }\n"
            } else {
                ""
            },
        );
        vec![
            ("crates/store/src/tracker.rs", tracker),
            ("crates/store/src/stats.rs", stats),
            ("crates/store/src/context.rs", context),
            ("crates/store/src/lib.rs", CLEAN.to_owned()),
        ]
    }

    #[test]
    fn l4_flags_half_threaded_counters() {
        let sources = parity_fixture(false);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        let hits: Vec<String> = diags_for(&refs)
            .into_iter()
            .filter(|d| d.rule == rules::COUNTER_PARITY)
            .map(|d| d.message)
            .collect();
        assert!(hits.iter().any(|m| m.contains("`lost` is missing from snapshot()")), "{hits:?}");
        assert!(hits.iter().any(|m| m.contains("`lost` is missing from reset()")), "{hits:?}");
        assert!(
            hits.iter().any(|m| m.contains("`lost` is not threaded through")
                && m.contains("QueryStats")
                && m.contains("QueryContext")),
            "{hits:?}"
        );
    }

    #[test]
    fn l4_accepts_fully_threaded_counters() {
        let sources = parity_fixture(true);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        assert_eq!(rules_hit(&refs, rules::COUNTER_PARITY), vec![]);
    }

    /// Fixture store files carrying the dynamic-lifecycle counters
    /// (`inserts`/`deletes`/`epoch_pins`), each half-threaded in a
    /// *different* place when `thread_everywhere` is false: `inserts`
    /// never reaches snapshot()/reset(), `deletes` is dropped between
    /// TrackerSnapshot and QueryStats, and `epoch_pins` lacks its
    /// QueryContext forwarder.
    fn dynamic_parity_fixture(thread_everywhere: bool) -> Vec<(&'static str, String)> {
        let t = thread_everywhere;
        let tracker = format!(
            "pub struct IoTracker {{\n    inserts: AtomicU64,\n    deletes: AtomicU64,\n\
             \x20   epoch_pins: AtomicU64,\n}}\n\
             impl IoTracker {{\n\
                 pub fn count_inserts(&self, n: u64) {{ self.inserts.fetch_add(n, O); }}\n\
                 pub fn count_deletes(&self, n: u64) {{ self.deletes.fetch_add(n, O); }}\n\
                 pub fn count_epoch_pins(&self, n: u64) {{ self.epoch_pins.fetch_add(n, O); }}\n\
                 pub fn snapshot(&self) -> TrackerSnapshot {{\n\
                     TrackerSnapshot {{ {} deletes: self.deletes.load(O), \
                      epoch_pins: self.epoch_pins.load(O) }}\n\
                 }}\n\
                 pub fn reset(&self) {{ {} self.deletes.store(0, O); \
                  self.epoch_pins.store(0, O); }}\n\
             }}\n\
             pub struct TrackerSnapshot {{\n{}    pub deletes: u64,\n    pub epoch_pins: u64,\n}}\n",
            if t { "inserts: self.inserts.load(O)," } else { "" },
            if t { "self.inserts.store(0, O);" } else { "" },
            if t { "    pub inserts: u64,\n" } else { "" },
        );
        let stats = format!(
            "pub struct QueryStats {{\n    pub inserts: u64,\n{}    pub epoch_pins: u64,\n}}\n\
             impl QueryStats {{\n\
                 fn from_snapshot(s: TrackerSnapshot) -> Self {{\n\
                     QueryStats {{ inserts: s.inserts, {} epoch_pins: s.epoch_pins }}\n\
                 }}\n\
                 pub fn accumulate(&mut self, o: &QueryStats) {{\n\
                     self.inserts += o.inserts;\n{}\
                     self.epoch_pins += o.epoch_pins;\n\
                 }}\n\
             }}\n",
            if t { "    pub deletes: u64,\n" } else { "" },
            if t { "deletes: s.deletes," } else { "" },
            if t { "self.deletes += o.deletes;\n" } else { "" },
        );
        let context = format!(
            "impl QueryContext {{\n\
                 pub fn count_inserts(&self, n: u64) {{ self.t.count_inserts(n); }}\n\
                 pub fn count_deletes(&self, n: u64) {{ self.t.count_deletes(n); }}\n{}\
             }}\n",
            if t {
                "pub fn count_epoch_pins(&self, n: u64) { self.t.count_epoch_pins(n); }\n"
            } else {
                ""
            },
        );
        vec![
            ("crates/store/src/tracker.rs", tracker),
            ("crates/store/src/stats.rs", stats),
            ("crates/store/src/context.rs", context),
            ("crates/store/src/lib.rs", CLEAN.to_owned()),
        ]
    }

    #[test]
    fn l4_flags_half_threaded_dynamic_lifecycle_counters() {
        let sources = dynamic_parity_fixture(false);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        let hits: Vec<String> = diags_for(&refs)
            .into_iter()
            .filter(|d| d.rule == rules::COUNTER_PARITY)
            .map(|d| d.message)
            .collect();
        assert!(
            hits.iter().any(|m| m.contains("`inserts` is missing from snapshot()")),
            "{hits:?}"
        );
        assert!(hits.iter().any(|m| m.contains("`inserts` is missing from reset()")), "{hits:?}");
        assert!(
            hits.iter().any(
                |m| m.contains("`deletes` is not threaded through") && m.contains("QueryStats")
            ),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|m| m.contains("`epoch_pins` is not threaded through")
                && m.contains("QueryContext")),
            "{hits:?}"
        );
    }

    #[test]
    fn l4_accepts_fully_threaded_dynamic_lifecycle_counters() {
        let sources = dynamic_parity_fixture(true);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        assert_eq!(rules_hit(&refs, rules::COUNTER_PARITY), vec![]);
    }

    /// Fixture store files with a per-shard `CacheCounts` whose `stale`
    /// field is (optionally) dropped by the `Add` impl and the pool.
    fn cache_fixture(thread_everywhere: bool) -> Vec<(&'static str, String)> {
        let tracker = format!(
            "pub struct CacheCounts {{\n    pub hits: u64,\n    pub stale: u64,\n}}\n\
             impl std::ops::Add for CacheCounts {{\n\
                 type Output = CacheCounts;\n\
                 fn add(self, o: CacheCounts) -> CacheCounts {{\n\
                     CacheCounts {{ hits: self.hits + o.hits, {} }}\n\
                 }}\n\
             }}\n",
            if thread_everywhere { "stale: self.stale + o.stale" } else { "..self" },
        );
        let pool = format!(
            "impl BufferPool {{\n\
                 fn touch(&self) {{ self.totals.hits += 1; {} }}\n\
             }}\n",
            if thread_everywhere { "self.totals.stale += 1;" } else { "" },
        );
        vec![
            ("crates/store/src/tracker.rs", tracker),
            ("crates/store/src/pool.rs", pool),
            ("crates/store/src/lib.rs", CLEAN.to_owned()),
        ]
    }

    #[test]
    fn l4_flags_cache_fields_dropped_by_shard_summing() {
        let sources = cache_fixture(false);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        let hits: Vec<String> = diags_for(&refs)
            .into_iter()
            .filter(|d| d.rule == rules::COUNTER_PARITY)
            .map(|d| d.message)
            .collect();
        assert!(
            hits.iter().any(|m| m.contains("`stale` is missing from the Add impl")),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|m| m.contains("`stale` is never maintained by the buffer pool")),
            "{hits:?}"
        );
        assert!(!hits.iter().any(|m| m.contains("`hits`")), "{hits:?}");
    }

    #[test]
    fn l4_accepts_fully_summed_cache_fields() {
        let sources = cache_fixture(true);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (*a, b.as_str())).collect();
        assert_eq!(rules_hit(&refs, rules::COUNTER_PARITY), vec![]);
    }

    #[test]
    fn l5_requires_safety_comments_and_forbid() {
        let bad = "pub fn f(p: *const u8) -> u8 {\n\
                unsafe { *p }\n\
            }\n";
        assert_eq!(rules_hit(&[("crates/u/src/lib.rs", bad)], rules::UNSAFE_HYGIENE), vec![2]);
        // An unsafe-free crate without the forbid attribute is flagged at
        // its lib.rs.
        let no_forbid = "pub fn id(x: u64) -> u64 {\n    x\n}\n";
        assert_eq!(
            rules_hit(&[("crates/u/src/lib.rs", no_forbid)], rules::UNSAFE_HYGIENE),
            vec![1]
        );
    }

    #[test]
    fn l5_accepts_documented_unsafe_and_forbid_crates() {
        let good = "// SAFETY: `p` is valid for reads by the caller's contract.\n\
            pub unsafe fn f(p: *const u8) -> u8 {\n\
                // SAFETY: see function contract above.\n\
                unsafe { *p }\n\
            }\n";
        assert_eq!(rules_hit(&[("crates/u/src/lib.rs", good)], rules::UNSAFE_HYGIENE), vec![]);
        assert_eq!(rules_hit(&[("crates/u/src/lib.rs", CLEAN)], rules::UNSAFE_HYGIENE), vec![]);
    }

    #[test]
    fn l6_requires_experiment_sections() {
        let ws = Workspace::from_sources(
            &[
                ("crates/bench/src/bin/exp_documented.rs", CLEAN),
                ("crates/bench/src/bin/exp_orphan.rs", CLEAN),
                ("crates/bench/src/lib.rs", CLEAN),
            ],
            Some("## exp_documented\nMeasures things.\n"),
        );
        let hits: Vec<String> = check(&ws)
            .into_iter()
            .filter(|d| d.rule == rules::EXPERIMENT_DOCS)
            .map(|d| d.file)
            .collect();
        assert_eq!(hits, vec!["crates/bench/src/bin/exp_orphan.rs".to_owned()]);
    }

    #[test]
    fn l7_flags_store_unwraps_outside_tests() {
        let bad = "#![forbid(unsafe_code)]\n\
            fn f(file: &std::fs::File, m: &std::sync::Mutex<u64>) -> u64 {\n\
                file.sync_all().unwrap();\n\
                let n = file.metadata().expect(\"stat\");\n\
                let g = m.lock().unwrap();\n\
                *g + n.len()\n\
            }\n\
            #[cfg(test)]\n\
            mod tests {\n\
                fn t() {\n\
                    std::fs::read(\"x\").unwrap();\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/store/src/file.rs", bad)], rules::STORE_ERROR_HYGIENE),
            vec![3, 4, 5]
        );
        // Lock-poisoning sites get the targeted recovery hint.
        let msgs: Vec<String> = diags_for(&[("crates/store/src/file.rs", bad)])
            .into_iter()
            .filter(|d| d.rule == rules::STORE_ERROR_HYGIENE && d.line == 5)
            .map(|d| d.message)
            .collect();
        assert!(msgs.iter().any(|m| m.contains("PoisonError::into_inner")), "{msgs:?}");
    }

    #[test]
    fn l7_allows_recovery_idioms_waivers_and_other_crates() {
        let good = "#![forbid(unsafe_code)]\n\
            use std::sync::PoisonError;\n\
            fn f(m: &std::sync::Mutex<u64>) -> u64 {\n\
                let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
                let n = std::fs::read(\"x\").unwrap_or_default().len() as u64;\n\
                *g + n\n\
            }\n\
            fn waived(m: &std::sync::Mutex<u64>) -> u64 {\n\
                *m.lock().unwrap() // lint-allow: store-error-hygiene demo of a justified panic\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/store/src/pool.rs", good)], rules::STORE_ERROR_HYGIENE),
            vec![]
        );
        // The same unwraps outside the covered library crates (store,
        // query, index) are not this rule's business.
        let elsewhere = "#![forbid(unsafe_code)]\n\
            fn f() {\n\
                std::fs::read(\"x\").unwrap();\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/bench/src/lib.rs", elsewhere)], rules::STORE_ERROR_HYGIENE),
            vec![]
        );
        // ... but query and index library code is now covered.
        assert_eq!(
            rules_hit(&[("crates/query/src/planner.rs", elsewhere)], rules::STORE_ERROR_HYGIENE),
            vec![3]
        );
        assert_eq!(
            rules_hit(&[("crates/index/src/storage.rs", elsewhere)], rules::STORE_ERROR_HYGIENE),
            vec![3]
        );
    }

    #[test]
    fn l8_flags_lock_order_cycles_and_shard_self_nesting() {
        // The good direction alone — writer mutex, then the epoch
        // RwLock — is rank-increasing and clean.
        let publish_only = "#![forbid(unsafe_code)]\n\
            impl Handle {\n\
                fn publish(&self) {\n\
                    let w = self.working.lock().unwrap();\n\
                    let mut slot = self.published.write().unwrap();\n\
                    *slot = w.snapshot();\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/query/src/epoch.rs", publish_only)], rules::LOCK_ORDER),
            vec![]
        );
        // Add a path that takes the same two classes in the opposite
        // order and the graph has a cycle; the inverted (rank-
        // decreasing) edge is the reported site.
        let with_inversion = "#![forbid(unsafe_code)]\n\
            impl Handle {\n\
                fn publish(&self) {\n\
                    let w = self.working.lock().unwrap();\n\
                    let mut slot = self.published.write().unwrap();\n\
                    *slot = w.snapshot();\n\
                }\n\
                fn inverted(&self) {\n\
                    let p = self.published.write().unwrap();\n\
                    let w = self.working.lock().unwrap();\n\
                    drop(w);\n\
                    drop(p);\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/query/src/epoch.rs", with_inversion)], rules::LOCK_ORDER),
            vec![10]
        );
        // Shard locks must never nest inside themselves, cycle or not.
        let self_nest = "#![forbid(unsafe_code)]\n\
            impl Pool {\n\
                fn rehash(&self, other: &Shard) {\n\
                    let a = self.inner.lock().unwrap();\n\
                    let b = other.inner.lock().unwrap();\n\
                    a.merge(&b);\n\
                }\n\
            }\n";
        let hits = rules_hit(&[("crates/store/src/pool.rs", self_nest)], rules::LOCK_ORDER);
        assert_eq!(hits, vec![5]);
        let msgs: Vec<String> = diags_for(&[("crates/store/src/pool.rs", self_nest)])
            .into_iter()
            .filter(|d| d.rule == rules::LOCK_ORDER)
            .map(|d| d.message)
            .collect();
        assert!(msgs[0].contains("self-nesting"), "{msgs:?}");
    }

    #[test]
    fn l9_flags_io_allocation_and_second_locks_under_a_hot_guard() {
        let bad = "#![forbid(unsafe_code)]\n\
            impl Shard {\n\
                fn fill(&self, store: &Store, id: u64) {\n\
                    let mut g = self.inner.lock().unwrap();\n\
                    let buf = vec![0u8; 4096];\n\
                    store.read_into(id, &mut g.frame);\n\
                    let d = self.data.lock().unwrap();\n\
                    g.install(buf, &d);\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/store/src/pool.rs", bad)], rules::NO_BLOCKING_UNDER_LOCK),
            vec![5, 6, 7]
        );
        // The same work staged *before* the guard is fine, as are the
        // colder classes (writer mutex) doing I/O-sized work.
        let good = "#![forbid(unsafe_code)]\n\
            impl Shard {\n\
                fn fill(&self, store: &Store, id: u64) {\n\
                    let mut buf = vec![0u8; 4096];\n\
                    store.read_into(id, &mut buf);\n\
                    let mut g = self.inner.lock().unwrap();\n\
                    g.install(buf);\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/store/src/pool.rs", good)], rules::NO_BLOCKING_UNDER_LOCK),
            vec![]
        );
        let cold = "#![forbid(unsafe_code)]\n\
            impl Writer {\n\
                fn rebuild(&self) {\n\
                    let w = self.working.lock().unwrap();\n\
                    let buf = vec![0u8; 4096];\n\
                    w.save_index(buf);\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/query/src/writer.rs", cold)], rules::NO_BLOCKING_UNDER_LOCK),
            vec![]
        );
    }

    #[test]
    fn l10_atomics_need_relaxed_counters_and_justified_strong_orderings() {
        let tracker = "#![forbid(unsafe_code)]\n\
            use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct IoTracker {\n\
                hits: AtomicU64,\n\
            }\n\
            impl IoTracker {\n\
                pub fn count_hits(&self) {\n\
                    self.hits.fetch_add(1, Ordering::SeqCst);\n\
                }\n\
            }\n";
        // A tracker counter with a strong ordering is wrong even if
        // somebody writes a justification comment.
        let hits =
            rules_hit(&[("crates/store/src/tracker.rs", tracker)], rules::ATOMICS_DISCIPLINE);
        assert_eq!(hits, vec![8]);
        let elsewhere = "#![forbid(unsafe_code)]\n\
            use std::sync::atomic::{AtomicU64, Ordering};\n\
            fn gen(flag: &AtomicU64) -> u64 {\n\
                flag.load(Ordering::Acquire)\n\
            }\n\
            fn publish(flag: &AtomicU64) {\n\
                // ORDERING: Release pairs with the Acquire load in gen().\n\
                flag.store(1, Ordering::Release);\n\
            }\n\
            fn relaxed(n: &AtomicU64) -> u64 {\n\
                n.load(Ordering::Relaxed)\n\
            }\n";
        // Line 4 has no ORDERING: comment; line 8 does; Relaxed is
        // always fine.
        assert_eq!(
            rules_hit(&[("crates/query/src/epochs.rs", elsewhere)], rules::ATOMICS_DISCIPLINE),
            vec![4]
        );
        // Non-atomic `.load(…)` calls (no Ordering argument) are not
        // atomic ops at all.
        let pool = "#![forbid(unsafe_code)]\n\
            fn f(pool: &Pool) -> Page {\n\
                pool.load(7).unwrap_or_default()\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/bench/src/lib.rs", pool)], rules::ATOMICS_DISCIPLINE),
            vec![]
        );
    }

    #[test]
    fn l11_epoch_protocol_guards_construction_publication_and_the_slot() {
        // Outside epoch.rs: constructing an epoch or reaching the
        // published slot directly is flagged; mentioning the type or
        // calling the generation accessor is not.
        let outside = "#![forbid(unsafe_code)]\n\
            fn steal(h: &Handle) -> u64 {\n\
                let e = IndexEpoch { generation: 0 };\n\
                let g = h.published.read().unwrap();\n\
                e.generation + g.generation + h.published_generation()\n\
            }\n\
            fn fine(h: &Handle) -> std::sync::Arc<IndexEpoch> {\n\
                h.pin()\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/index/src/lib.rs", outside)], rules::EPOCH_PROTOCOL),
            vec![3, 4]
        );
        // Inside epoch.rs: write-locking the published slot without the
        // writer mutex held is flagged; the pin() read path and the
        // guarded publish path are the sanctioned doors.
        let inside = "#![forbid(unsafe_code)]\n\
            impl Handle {\n\
                fn pin(&self) -> Arc<IndexEpoch> {\n\
                    self.published.read().unwrap().clone()\n\
                }\n\
                fn publish(&self) {\n\
                    let w = self.working.lock().unwrap();\n\
                    let mut slot = self.published.write().unwrap();\n\
                    *slot = w.snapshot();\n\
                }\n\
                fn rogue(&self) {\n\
                    let mut slot = self.published.write().unwrap();\n\
                    *slot = Arc::default();\n\
                }\n\
            }\n";
        assert_eq!(
            rules_hit(&[("crates/query/src/epoch.rs", inside)], rules::EPOCH_PROTOCOL),
            vec![12]
        );
    }

    #[test]
    fn waiver_syntax_is_loud_and_unwaivable() {
        let bad = "#![forbid(unsafe_code)]\n\
            // lint-allow: float-ordering\n\
            // lint-allow: no-such-rule because reasons\n\
            // lint-scope: no_such_scope\n\
            fn f() {}\n";
        assert_eq!(rules_hit(&[("crates/q/src/lib.rs", bad)], rules::WAIVER_SYNTAX), vec![2, 3, 4]);
    }
}
