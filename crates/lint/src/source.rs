//! Line-oriented lexical model of one Rust source file.
//!
//! `vsim-lint` deliberately avoids a full parser: rules only need to
//! tell *code* apart from comments and literal contents, to track brace
//! depth well enough to scope a waiver to one function, and to know
//! which lines sit inside a `#[cfg(test)]`-gated item. This module is
//! that model. Each line is split into a `code` view (string/char
//! literal contents blanked to spaces, comments removed — so searching
//! for a token never trips over prose or fixture strings) and a
//! `comment` view (the prose, where `SAFETY:` notes and lint directives
//! live).

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Comment text on the line, without the `//` / `/* */` markers.
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth_start: u32,
    /// Brace depth at the end of the line.
    pub depth_end: u32,
    /// Whether the line is inside a `#[cfg(test)]`-gated item.
    pub in_cfg_test: bool,
}

/// An inline suppression: `// lint-allow: <rule-id> <reason>`.
///
/// On a line with code, it waives that line only. On a standalone
/// comment line directly above an `fn`, it waives the whole function
/// body; above any other line, just that line.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    /// 1-based inclusive line range the waiver covers.
    pub first_line: usize,
    pub last_line: usize,
}

/// A directive the engine could not parse (reported as `waiver-syntax`).
#[derive(Debug, Clone)]
pub struct DirectiveError {
    pub line: usize,
    pub message: String,
}

/// A lexically analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    pub lines: Vec<Line>,
    /// All `code` views joined with `\n` (for multi-line token scans).
    pub code: String,
    /// Byte offset in `code` where each line starts.
    line_offsets: Vec<usize>,
    /// `lint-scope:` tags declared anywhere in the file.
    pub scopes: Vec<String>,
    pub waivers: Vec<Waiver>,
    pub directive_errors: Vec<DirectiveError>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Length of the char literal starting at `i` (which holds `'`), or
/// `None` if this is a lifetime tick.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: skip the escape body up to the closing tick.
            let mut j = i + 2;
            if chars.get(j) == Some(&'u') {
                while j < chars.len() && chars[j] != '}' && chars[j] != '\n' {
                    j += 1;
                }
            }
            j += 1;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                Some(j - i + 1)
            } else {
                None
            }
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') && chars[i + 1] != '\'' => Some(3),
        _ => None,
    }
}

/// If a raw string literal (`r"`, `r#"`, `br##"`, …) starts at `i`,
/// returns `(hash_count, chars_consumed_through_opening_quote)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Split `text` into analyzed lines: comments separated from code,
/// literal contents blanked, brace depth tracked over code only.
pub fn analyze(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut depth: u32 = 0;
    let mut depth_start: u32 = 0;
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                depth_start,
                depth_end: depth,
                in_cfg_test: false,
            });
            depth_start = depth;
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    i += 2;
                    while matches!(chars.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                    continue;
                }
                if (c == 'r' || c == 'b') && (i == 0 || !is_ident(chars[i - 1])) {
                    if let Some((hashes, consumed)) = raw_string_start(&chars, i) {
                        for _ in 0..consumed.saturating_sub(1) {
                            code.push(' ');
                        }
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += consumed;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        code.push(' ');
                        code.push('"');
                        mode = Mode::Str;
                        i += 2;
                        continue;
                    }
                }
                if c == '\'' {
                    if let Some(len) = char_literal_len(&chars, i) {
                        code.push('\'');
                        for _ in 0..len.saturating_sub(2) {
                            code.push(' ');
                        }
                        code.push('\'');
                        i += len;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                if c == '{' {
                    depth += 1;
                } else if c == '}' {
                    depth = depth.saturating_sub(1);
                }
                code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(d) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(d + 1);
                    i += 2;
                    continue;
                }
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if d == 1 { Mode::Code } else { Mode::BlockComment(d - 1) };
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Mode::Str => {
                if c == '\\' {
                    // Keep escaped quotes/backslashes from terminating the
                    // literal; a trailing `\` before a newline is left for
                    // the newline handler above.
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                    continue;
                }
                code.push(' ');
                i += 1;
            }
            Mode::RawStr(h) => {
                if c == '"' && (0..h as usize).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    code.push('"');
                    for _ in 0..h {
                        code.push(' ');
                    }
                    mode = Mode::Code;
                    i += 1 + h as usize;
                    continue;
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { code, comment, depth_start, depth_end: depth, in_cfg_test: false });
    }
    lines
}

/// Mark every line belonging to a `#[cfg(test)]`-gated item.
fn mark_cfg_test(lines: &mut [Line]) {
    let n = lines.len();
    let mut i = 0;
    while i < n {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // The attribute gates the next item: skip attributes, comments
        // and blank lines to find it.
        let mut j = i + 1;
        while j < n {
            let t = lines[j].code.trim();
            if t.is_empty() || t.starts_with("#[") {
                j += 1;
            } else {
                break;
            }
        }
        if j >= n {
            break;
        }
        let base = lines[j].depth_start;
        // Item with a block: mark through the matching close brace.
        // Blockless item (e.g. a gated `use`): mark the one line.
        let mut end = j;
        if lines[j].depth_end > base {
            while end < n && lines[end].depth_end > base {
                end += 1;
            }
            end = end.min(n - 1);
        }
        for line in lines.iter_mut().take(end + 1).skip(i) {
            line.in_cfg_test = true;
        }
        i = end + 1;
    }
}

/// Parse a `lint-allow:` / `lint-scope:` directive payload into
/// whitespace-separated words. A directive must be the entire comment
/// (so prose that merely *mentions* the syntax never parses as one).
pub(crate) fn directive_words(comment: &str, marker: &str) -> Option<Vec<String>> {
    let rest = comment.trim_start().strip_prefix(marker)?;
    Some(rest.split_whitespace().map(str::to_owned).collect())
}

impl SourceFile {
    pub fn new(rel: &str, text: &str) -> SourceFile {
        let mut lines = analyze(text);
        mark_cfg_test(&mut lines);

        let mut code = String::new();
        let mut line_offsets = Vec::with_capacity(lines.len());
        for line in &lines {
            line_offsets.push(code.len());
            code.push_str(&line.code);
            code.push('\n');
        }

        let mut file = SourceFile {
            rel: rel.to_owned(),
            lines,
            code,
            line_offsets,
            scopes: Vec::new(),
            waivers: Vec::new(),
            directive_errors: Vec::new(),
        };
        file.collect_directives();
        file
    }

    fn collect_directives(&mut self) {
        for i in 0..self.lines.len() {
            let lineno = i + 1;
            let comment = self.lines[i].comment.clone();
            if let Some(words) = directive_words(&comment, "lint-scope:") {
                match words.first() {
                    Some(tag) => self.scopes.push(tag.clone()),
                    None => self.directive_errors.push(DirectiveError {
                        line: lineno,
                        message: "lint-scope directive without a scope name".to_owned(),
                    }),
                }
            }
            let Some(words) = directive_words(&comment, "lint-allow:") else { continue };
            let Some(rule) = words.first().cloned() else {
                self.directive_errors.push(DirectiveError {
                    line: lineno,
                    message: "lint-allow directive without a rule id".to_owned(),
                });
                continue;
            };
            let reason = words[1..].join(" ");
            if reason.is_empty() {
                self.directive_errors.push(DirectiveError {
                    line: lineno,
                    message: format!("lint-allow for `{rule}` needs a reason after the rule id"),
                });
                continue;
            }
            let (first, last) = self.waiver_range(i);
            self.waivers.push(Waiver { rule, reason, first_line: first + 1, last_line: last + 1 });
        }
    }

    /// 0-based inclusive line range covered by a waiver written on line
    /// `i`: the line itself when it carries code; otherwise the next
    /// item — the whole body when that item is a function.
    fn waiver_range(&self, i: usize) -> (usize, usize) {
        if !self.lines[i].code.trim().is_empty() {
            return (i, i);
        }
        let n = self.lines.len();
        let mut j = i + 1;
        while j < n {
            let t = self.lines[j].code.trim();
            if t.is_empty() || t.starts_with("#[") {
                j += 1;
            } else {
                break;
            }
        }
        if j >= n {
            return (i, i);
        }
        // Scan the item signature up to its opening brace (or `;`).
        let base = self.lines[j].depth_start;
        let mut sig = String::new();
        let mut k = j;
        let mut opens_block = false;
        while k < n && k < j + 25 {
            sig.push_str(&self.lines[k].code);
            sig.push(' ');
            if self.lines[k].depth_end > base {
                opens_block = true;
                break;
            }
            if self.lines[k].code.contains(';') {
                break;
            }
            k += 1;
        }
        if opens_block && find_word(&sig, "fn").next().is_some() {
            let mut end = k;
            while end < n && self.lines[end].depth_end > base {
                end += 1;
            }
            return (i, end.min(n - 1));
        }
        (i, j)
    }

    /// Byte offset in `self.code` where 0-based `line` starts.
    pub fn line_start(&self, line: usize) -> usize {
        self.line_offsets.get(line).copied().unwrap_or(self.code.len())
    }

    /// 1-based line number containing byte offset `at` of `self.code`.
    pub fn line_of(&self, at: usize) -> usize {
        match self.line_offsets.binary_search(&at) {
            Ok(idx) => idx + 1,
            Err(idx) => idx, // idx is the insertion point: line idx-1, 1-based idx
        }
    }

    /// Whether a waiver for `rule` covers 1-based `line`.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waivers.iter().any(|w| w.rule == rule && w.first_line <= line && line <= w.last_line)
    }

    /// Whether the contiguous comment block on or directly above
    /// 1-based `line` contains `needle`.
    pub fn comment_block_contains(&self, line: usize, needle: &str) -> bool {
        let idx = line - 1;
        if self.lines[idx].comment.contains(needle) {
            return true;
        }
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            if l.code.trim().is_empty() && !l.comment.trim().is_empty() {
                if l.comment.contains(needle) {
                    return true;
                }
            } else {
                break;
            }
        }
        false
    }
}

/// Iterator over the byte offsets of whole-word occurrences of `word`
/// in `hay` (neither neighbor is an identifier character).
pub fn find_word<'a>(hay: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = hay.as_bytes();
    let mut from = 0;
    std::iter::from_fn(move || {
        while from <= hay.len() {
            let rel = hay[from..].find(word)?;
            let at = from + rel;
            from = at + word.len().max(1);
            let before_ok = at == 0 || {
                let c = bytes[at - 1] as char;
                !(c.is_ascii_alphanumeric() || c == '_')
            };
            let end = at + word.len();
            let after_ok = end >= hay.len() || {
                let c = bytes[end] as char;
                !(c.is_ascii_alphanumeric() || c == '_')
            };
            if before_ok && after_ok {
                return Some(at);
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated_from_code() {
        let f = SourceFile::new(
            "x.rs",
            "let a = \"vec![in a string]\"; // vec![in a comment]\nlet b = 2;\n",
        );
        assert!(!f.lines[0].code.contains("vec!["));
        assert!(f.lines[0].comment.contains("vec![in a comment]"));
        assert!(f.lines[0].code.contains("let a ="));
        assert_eq!(f.lines[1].code.trim(), "let b = 2;");
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = SourceFile::new(
            "x.rs",
            "let a = r#\"unsafe { \"quoted\" }\"#;\nlet b = \"esc \\\" brace {\";\nlet c = 1;\n",
        );
        assert!(!f.code.contains("unsafe"));
        assert!(!f.lines[1].code.contains('{'));
        assert_eq!(f.lines[0].depth_start, 0);
        assert_eq!(f.lines[2].depth_end, 0, "literal braces must not affect depth");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = SourceFile::new(
            "x.rs",
            "fn f<'a>(x: &'a str) -> char { '}' }\nlet esc = '\\n';\nlet q = '\\'';\n",
        );
        // The '}' literal must not close the fn's brace...
        assert_eq!(f.lines[0].depth_end, 0, "fn opens and closes on one line");
        // ...and escapes survive without desyncing the lexer.
        assert!(f.lines[1].code.contains("let esc"));
        assert!(f.lines[2].code.contains("let q"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = SourceFile::new("x.rs", "a /* one /* two */ still */ b\n/* open\nclose */ c\n");
        assert!(f.lines[0].code.contains('a') && f.lines[0].code.contains('b'));
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[1].code.trim().is_empty());
        assert!(f.lines[2].code.contains('c'));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.lines[0].in_cfg_test);
        assert!(f.lines[1].in_cfg_test && f.lines[2].in_cfg_test);
        assert!(f.lines[3].in_cfg_test && f.lines[4].in_cfg_test);
        assert!(!f.lines[5].in_cfg_test);
    }

    #[test]
    fn waiver_on_code_line_covers_that_line_only() {
        let src = "let a = 1; // lint-allow: float-ordering keys are finite by construction\nlet b = 2;\n";
        let f = SourceFile::new("x.rs", src);
        assert_eq!(f.waivers.len(), 1);
        assert!(f.is_waived("float-ordering", 1));
        assert!(!f.is_waived("float-ordering", 2));
        assert!(!f.is_waived("no-alloc-kernel", 1), "waivers are per-rule");
    }

    #[test]
    fn standalone_waiver_covers_the_following_function_body() {
        let src = "\
// lint-allow: no-alloc-kernel constructor, not on the per-distance path
pub fn setup(n: usize) -> Vec<f64> {
    let v = vec![0.0; n];
    v
}
fn hot() {}
";
        let f = SourceFile::new("x.rs", src);
        assert_eq!(f.waivers.len(), 1);
        let w = &f.waivers[0];
        assert_eq!((w.first_line, w.last_line), (1, 5));
        assert!(f.is_waived("no-alloc-kernel", 3));
        assert!(!f.is_waived("no-alloc-kernel", 6));
    }

    #[test]
    fn malformed_waivers_are_reported() {
        let f = SourceFile::new("x.rs", "// lint-allow: float-ordering\n// lint-allow:\n");
        assert_eq!(f.waivers.len(), 0);
        assert_eq!(f.directive_errors.len(), 2);
        assert!(f.directive_errors[0].message.contains("reason"));
        assert!(f.directive_errors[1].message.contains("rule id"));
    }

    #[test]
    fn scope_tags_are_collected() {
        let f = SourceFile::new("x.rs", "// lint-scope: no_alloc\nfn f() {}\n");
        assert_eq!(f.scopes, vec!["no_alloc".to_owned()]);
    }

    #[test]
    fn find_word_respects_identifier_boundaries() {
        let hits: Vec<usize> = find_word("unsafe unsafe_code fn_unsafe unsafe", "unsafe").collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], 0);
    }
}
