#![forbid(unsafe_code)]
//! # vsim-lint — workspace invariants, machine-enforced
//!
//! A self-contained static-analysis pass in the style of rustc's
//! `tools/tidy`: it walks every `.rs` file in the workspace (line
//! oriented, no `syn`, fully offline) and enforces the hand-maintained
//! invariants established by the storage-engine, matching-kernel and
//! multi-step-planner PRs — NaN-safe orderings on query paths, the
//! allocation-free matching kernel, the `QueryContext` storage
//! boundary, counter parity across the stats plumbing, unsafe hygiene,
//! and experiment documentation. See `DESIGN.md` §10 for each rule's
//! rationale and [`rules`] for the implementations.
//!
//! Violations can be suppressed with an inline waiver comment whose
//! body is exactly `lint-allow:` followed by a rule id and a mandatory
//! justification; written on its own line directly above an `fn`, the
//! waiver covers the whole function. Scope tags (`lint-scope:` plus a
//! scope name) opt a file into stricter rule sets — `no_alloc` marks
//! the matching-kernel files whose steady-state paths must not
//! allocate.
//!
//! Three frontends share this engine: the `vsim-lint` binary
//! (`--list-rules`, `--json`), the `workspace_clean` integration test
//! (so `cargo test` is a tier-1 gate), and a CI step with a seeded
//! negative smoke check.

pub mod model;
pub mod rules;
pub mod source;

use std::fmt;
use std::path::{Path, PathBuf};

pub use source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (kebab-case, stable — used in waivers).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// The analyzed workspace a lint run sees.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// `EXPERIMENTS.md`, when present at the root.
    pub experiments_md: Option<String>,
}

impl Workspace {
    /// Walk `root` and analyze every tracked `.rs` file. `vendor/` (the
    /// offline stand-ins for external crates) and build output are not
    /// ours to lint and are skipped.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut paths: Vec<PathBuf> = Vec::new();
        for sub in ["crates", "tests", "examples"] {
            let dir = root.join(sub);
            if dir.is_dir() {
                walk(&dir, &mut paths)?;
            }
        }
        let mut files = Vec::with_capacity(paths.len());
        for p in &paths {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::new(&rel, &text));
        }
        let experiments_md = std::fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
        Ok(Workspace { files, experiments_md })
    }

    /// Build a workspace from in-memory sources — the fixture entry
    /// point for rule tests.
    pub fn from_sources(sources: &[(&str, &str)], experiments_md: Option<&str>) -> Workspace {
        Workspace {
            files: sources.iter().map(|(rel, text)| SourceFile::new(rel, text)).collect(),
            experiments_md: experiments_md.map(str::to_owned),
        }
    }

    /// The analyzed file at `rel`, if the workspace contains it.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every rule over an analyzed workspace, apply waivers, and return
/// the surviving diagnostics sorted by file, line and rule.
///
/// This is the two-phase engine: phase one builds the cross-file
/// [`model::WorkspaceModel`] (functions, lock acquisitions with guard
/// live-ranges, the acquisition-order graph, atomic-op sites, the
/// counter model) exactly once; phase two hands it to every rule.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let model = model::WorkspaceModel::build(ws);
    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in rules::all() {
        rule.check(ws, &model, &mut diags);
    }
    diags.retain(|d| {
        // The waiver validator must not be silenced by the thing it
        // validates.
        d.rule == rules::WAIVER_SYNTAX
            || !ws.file(&d.file).is_some_and(|f| f.is_waived(d.rule, d.line))
    });
    // Rules emit in whatever order they walk the workspace; the output
    // contract (and CI's lint-output diffs) is (file, line, rule).
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    diags.dedup();
    diags
}

/// Load the workspace at `root` and lint it.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    Ok(check(&Workspace::load(root)?))
}

/// Render diagnostics as a JSON array (hand-rolled: the crate is
/// dependency-free by design).
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&d.file),
            d.line,
            d.rule,
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_diagnostics_are_dropped_and_output_is_sorted() {
        let ws = Workspace::from_sources(
            &[(
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 fn b() {\n\
                     let mut v = vec![(0u64, 0.0f64)];\n\
                     v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap()); // lint-allow: float-ordering fixture keys are finite\n\
                     v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());\n\
                 }\n",
            )],
            None,
        );
        let diags = check(&ws);
        assert_eq!(diags.len(), 1, "waived line suppressed, unwaived kept: {diags:?}");
        assert_eq!(diags[0].line, 5);
        assert_eq!(diags[0].rule, rules::FLOAT_ORDERING);
    }

    #[test]
    fn findings_across_files_come_out_in_path_line_rule_order() {
        // Two files, loaded in reverse path order, each with violations
        // on interleaving line numbers: the output (and therefore the
        // `--json` dump CI diffs) must still sort by (file, line, rule).
        let bad = "#![forbid(unsafe_code)]\n\
             fn s(v: &mut [(f64, f64)]) {\n\
                 v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());\n\
                 v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());\n\
             }\n";
        let ws = Workspace::from_sources(
            &[("crates/zz/src/lib.rs", bad), ("crates/aa/src/lib.rs", bad)],
            None,
        );
        let diags = check(&ws);
        let keys: Vec<(String, usize)> = diags.iter().map(|d| (d.file.clone(), d.line)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "diagnostics must be stably ordered");
        assert_eq!(keys[0].0, "crates/aa/src/lib.rs");
        assert!(keys.iter().filter(|(f, _)| f.starts_with("crates/zz")).count() >= 2);
    }

    #[test]
    fn json_rendering_escapes_and_lists() {
        let diags = vec![Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: "float-ordering",
            message: "say \"no\"".into(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(render_json(&[]), "[\n]");
    }
}
