#![forbid(unsafe_code)]
//! `vsim-lint` CLI. Exit codes: 0 clean, 1 violations, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    let mut s = String::from(
        "usage: vsim-lint [--root <dir>] [--json] [--graph-dot] [--list-rules]\n\n\
         Walks every .rs file under <dir> (default: the workspace this\n\
         binary was built from) and reports invariant violations as\n\
         `file:line: rule-id: message`. With --graph-dot, prints the\n\
         observed lock-acquisition-order graph as Graphviz DOT instead\n\
         of linting.\n",
    );
    s.push_str("\nrules:\n");
    for rule in vsim_lint::rules::all() {
        s.push_str(&format!("  {:<18} {}\n", rule.id(), rule.description()));
    }
    s
}

fn default_root() -> PathBuf {
    // The manifest dir is baked in at compile time; fall back to the
    // current directory when the binary moved (e.g. a CI cache).
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled.join("crates").is_dir() {
        compiled
    } else {
        PathBuf::from(".")
    }
}

fn main() -> ExitCode {
    let mut root = default_root();
    let mut json = false;
    let mut graph_dot = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in vsim_lint::rules::all() {
                    println!("{:<18} {}", rule.id(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--graph-dot" => graph_dot = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if graph_dot {
        let ws = match vsim_lint::Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("vsim-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let model = vsim_lint::model::WorkspaceModel::build(&ws);
        print!("{}", model.render_lock_graph_dot(&ws.files));
        return ExitCode::SUCCESS;
    }

    let diags = match vsim_lint::run(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("vsim-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", vsim_lint::render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if !diags.is_empty() {
            eprintln!("vsim-lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
