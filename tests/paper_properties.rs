//! Paper-level properties verified end to end on synthetic CAD data:
//! the claims of Sections 4 and 5 that do not need the full experiment
//! harness (those live in `crates/bench`).

use vsim_core::prelude::*;
use vsim_setdist::matching::{MinimalMatching, PointDistance, WeightFunction};

fn processed_car(n: usize, k_max: usize, seed: u64) -> ProcessedDataset {
    ProcessedDataset::build(car_dataset(seed, n), k_max)
}

/// Section 4.2: the minimum Euclidean distance under permutation equals
/// the square root of the matching distance with squared Euclidean point
/// distance and squared-norm weights — verified against brute-force
/// permutation enumeration on real cover data.
#[test]
fn permutation_distance_equivalence_on_real_covers() {
    let p = processed_car(30, 4, 21);
    let sets = p.vector_sets(4);
    let mm = MinimalMatching::permutation_model();
    for i in (0..sets.len()).step_by(5) {
        for j in (0..sets.len()).step_by(7) {
            let fast = mm.distance_value(&sets[i], &sets[j]);
            let slow =
                vsim_setdist::matching::brute_force_matching_distance(&mm, &sets[i], &sets[j]);
            assert!(
                (fast - slow).abs() < 1e-9,
                "Kuhn-Munkres {fast} vs brute force {slow} for pair ({i},{j})"
            );
        }
    }
}

/// Table 1's trend: with more covers, a larger fraction of distance
/// computations requires a non-identity permutation.
#[test]
fn permutation_rate_increases_with_k() {
    let p = processed_car(60, 9, 22);
    let mut rates = Vec::new();
    for k in [3usize, 7] {
        let sets = p.vector_sets(k);
        let mm = MinimalMatching::vector_set_model();
        let mut needed = 0usize;
        let mut total = 0usize;
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                total += 1;
                if mm.match_sets(&sets[i], &sets[j]).permutation_needed {
                    needed += 1;
                }
            }
        }
        rates.push(needed as f64 / total as f64);
    }
    assert!(
        rates[1] > rates[0],
        "permutation rate must grow with k: k=3 -> {:.2}, k=7 -> {:.2}",
        rates[0],
        rates[1]
    );
    // The paper reports 68.2% already at k = 3 and 99% at k = 7.
    assert!(rates[1] > 0.5, "k=7 rate suspiciously low: {:.2}", rates[1]);
}

/// Lemma 1's conditions hold for the paper's instantiation on real data:
/// no cover has zero volume, so w(x) > 0, and the metric axioms hold on
/// a data sample.
#[test]
fn vector_set_distance_is_metric_on_real_data() {
    let p = processed_car(25, 7, 23);
    let sets = p.vector_sets(7);
    // Covers always have volume -> nonzero feature vectors.
    for s in &sets {
        for v in s.iter() {
            assert!(v[3] > 0.0 && v[4] > 0.0 && v[5] > 0.0, "cover with zero extent found");
        }
    }
    let mm = MinimalMatching::vector_set_model();
    vsim_setdist::metric::check_metric_axioms(&mm, &sets[..12], 1e-9).unwrap();
}

/// The centroid filter is not just correct but *selective*: on real
/// data, the lower bound is a decent fraction of the exact distance.
#[test]
fn centroid_filter_selectivity() {
    let p = processed_car(50, 7, 24);
    let sets = p.vector_sets(7);
    let omega = vec![0.0; 6];
    let mm = MinimalMatching {
        point_distance: PointDistance::Euclidean,
        weight: WeightFunction::DistanceTo(omega.clone()),
        sqrt_of_total: false,
    };
    let mut ratio_sum = 0.0;
    let mut count = 0;
    for i in (0..sets.len()).step_by(3) {
        let ci = extended_centroid(&sets[i], 7, &omega);
        for j in (i + 1..sets.len()).step_by(3) {
            let cj = extended_centroid(&sets[j], 7, &omega);
            let lb = centroid_lower_bound(&ci, &cj, 7);
            let exact = mm.distance_value(&sets[i], &sets[j]);
            if exact > 1e-12 {
                ratio_sum += lb / exact;
                count += 1;
            }
        }
    }
    let mean_ratio = ratio_sum / count as f64;
    assert!(
        mean_ratio > 0.05,
        "filter bound too loose to be useful: mean lb/exact = {mean_ratio:.3}"
    );
}

/// Section 5.3's headline: the vector set model separates part families
/// better than the volume model (quantified via OPTICS + best-cut F1).
#[test]
fn vector_set_beats_volume_model_on_clustering() {
    let p = processed_car(80, 7, 25);
    let labels = p.labels();
    let optics = Optics { min_pts: 3, eps: f64::INFINITY };

    let score = |model: &SimilarityModel| {
        let reprs = p.representations(model);
        let oracle = p.distance_oracle(model, &reprs);
        let ordering = optics.run(p.len(), oracle);
        best_cut(&ordering, &labels, 3, vsim_optics::DEFAULT_GRID).f1
    };
    let f1_volume = score(&SimilarityModel::volume(6));
    let f1_vset = score(&SimilarityModel::vector_set(7));
    assert!(
        f1_vset > f1_volume,
        "vector set F1 {f1_vset:.3} must beat volume model F1 {f1_volume:.3}"
    );
}

/// Figures 8 vs 9: the permutation distance on the one-vector model and
/// the matching distance on the vector set model "lead to basically
/// equivalent results" — their k-NN rankings agree closely.
#[test]
fn permutation_and_vector_set_models_rank_alike() {
    let p = processed_car(60, 7, 26);
    let sets = p.vector_sets(7);
    let perm = MinimalMatching::permutation_model();
    let vset = MinimalMatching::vector_set_model();
    let mut overlap_sum = 0.0;
    let queries = [0usize, 10, 20, 30];
    for &q in &queries {
        let knn = |mm: &MinimalMatching| -> Vec<u64> {
            let mut all: Vec<(u64, f64)> = sets
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u64, mm.distance_value(&sets[q], s)))
                .collect();
            all.sort_by(|a, b| a.1.total_cmp(&b.1));
            all.truncate(10);
            all.into_iter().map(|(i, _)| i).collect()
        };
        let a: std::collections::HashSet<u64> = knn(&perm).into_iter().collect();
        let b: std::collections::HashSet<u64> = knn(&vset).into_iter().collect();
        overlap_sum += a.intersection(&b).count() as f64 / 10.0;
    }
    let mean_overlap = overlap_sum / queries.len() as f64;
    assert!(mean_overlap >= 0.6, "10-NN overlap between the two distances only {mean_overlap:.2}");
}
