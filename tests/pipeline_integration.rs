//! Cross-crate integration: geometry -> voxelization -> features ->
//! distances, exercising the full extraction pipeline end to end.

use vsim_core::prelude::*;
use vsim_geom::solid::{CylinderZ, SolidExt, TorusZ};
use vsim_geom::{Mat3, TriMesh, Vec3};
use vsim_voxel::rotate_grid;

fn voxelize(s: &dyn vsim_geom::Solid, r: usize) -> VoxelGrid {
    voxelize_solid(s, r, NormalizeMode::Uniform).grid
}

#[test]
fn mesh_and_solid_paths_agree_on_features() {
    // The same cylinder via the implicit path and the tessellated path
    // must produce nearly identical vector sets.
    let solid = CylinderZ { radius: 1.0, half_height: 1.5 };
    let mesh = TriMesh::make_cylinder(1.0, 3.0, 64);
    let g_solid = voxelize(&solid, 15);
    let g_mesh = voxelize_mesh(&mesh, 15, NormalizeMode::Uniform).grid;

    let model = VectorSetModel::new(7);
    let a = model.extract(&g_solid);
    let b = model.extract(&g_mesh);
    let d = MinimalMatching::vector_set_model().distance_value(&a, &b);
    // Same object through two pipelines: clearly smaller distance than
    // to a genuinely different part. (Not near-zero: the conservative
    // mesh rasterization adds a one-voxel shell and the greedy cover
    // search then picks slightly different covers — extraction noise
    // that the matching distance absorbs but does not eliminate.)
    let torus = voxelize(&TorusZ { major: 2.0, minor: 0.5 }, 15);
    let c = model.extract(&torus);
    let d_other = MinimalMatching::vector_set_model().distance_value(&a, &c);
    assert!(d < 0.8 * d_other, "pipelines diverge: same {d} vs different {d_other}");
}

#[test]
fn similar_parts_are_closer_than_dissimilar_across_all_models() {
    let tire_a = TorusZ { major: 2.0, minor: 0.6 };
    let tire_b = TorusZ { major: 2.1, minor: 0.55 };
    let rod = CylinderZ { radius: 0.3, half_height: 3.0 };

    let grids = |s: &dyn vsim_geom::Solid| (voxelize(s, 15), voxelize(s, 30));
    let (a15, a30) = grids(&tire_a);
    let (b15, b30) = grids(&tire_b);
    let (c15, c30) = grids(&rod);

    for model in [
        SimilarityModel::volume(5),
        SimilarityModel::solid_angle(5, 3),
        SimilarityModel::cover_sequence(7),
        SimilarityModel::cover_sequence_permutation(7),
        SimilarityModel::vector_set(7),
    ] {
        let same = model.grid_distance(&a15, &a30, &b15, &b30);
        let diff = model.grid_distance(&a15, &a30, &c15, &c30);
        assert!(same < diff, "{}: similar {same} !< dissimilar {diff}", model.name());
    }
}

#[test]
fn rotation_invariance_end_to_end() {
    // A part rotated by a cube rotation is recognized under Definition 2
    // for every model, end to end from the voxel grids.
    let part = vsim_geom::solid::union(vec![
        CylinderZ { radius: 0.5, half_height: 2.0 }.boxed(),
        vsim_geom::solid::translated(
            TorusZ { major: 1.2, minor: 0.3 }.boxed(),
            Vec3::new(0.0, 0.0, 1.5),
        ),
    ]);
    let g15 = voxelize(part.as_ref(), 15);
    let g30 = voxelize(part.as_ref(), 30);
    let m = Mat3::cube_rotations()[17];
    let r15 = rotate_grid(&g15, &m);
    let r30 = rotate_grid(&g30, &m);

    // Histogram models: rotating the grid permutes cells exactly, so the
    // invariant distance is exactly zero.
    for model in [SimilarityModel::volume(5), SimilarityModel::solid_angle(5, 2)] {
        let inv = model.with_invariance(Invariance::Rotation24);
        let d = inv.grid_distance(&g15, &g30, &r15, &r30);
        assert!(d < 1e-6, "{}: rotated copy at distance {d}", model.name());
    }
    // Cover-based model: re-extracting covers from the rotated grid is
    // subject to greedy tie-breaking, so the invariant distance is small
    // but not exactly zero; it must be far below the non-invariant
    // distance and below typical intra-family distances.
    let vset = SimilarityModel::vector_set(7);
    let plain = vset.grid_distance(&g15, &g30, &r15, &r30);
    let inv = vset.with_invariance(Invariance::Rotation24).grid_distance(&g15, &g30, &r15, &r30);
    assert!(inv < 0.5 * plain, "invariant {inv} vs plain {plain}");
    assert!(inv < 0.5, "rotated copy too far under invariant distance: {inv}");
}

#[test]
fn stl_roundtrip_preserves_features() {
    // Export a part to STL (both encodings), re-import, voxelize and
    // extract features: the vector sets must match the original's almost
    // exactly (binary STL quantizes to f32).
    let mesh = TriMesh::make_cylinder(1.0, 2.5, 48);
    let model = VectorSetModel::new(7);
    let extract = |m: &TriMesh| model.extract(&voxelize_mesh(m, 15, NormalizeMode::Uniform).grid);
    let original = extract(&mesh);

    let mut ascii = Vec::new();
    vsim_geom::stl::write_stl_ascii(&mesh, &mut ascii, "part").unwrap();
    let back_ascii = vsim_geom::stl::read_stl(&ascii[..]).unwrap();
    assert_eq!(extract(&back_ascii), original);

    let mut binary = Vec::new();
    vsim_geom::stl::write_stl_binary(&mesh, &mut binary).unwrap();
    let back_bin = vsim_geom::stl::read_stl(&binary[..]).unwrap();
    let d = MinimalMatching::vector_set_model().distance_value(&extract(&back_bin), &original);
    assert!(d < 1e-6, "binary STL roundtrip changed features by {d}");
}

#[test]
fn morphology_cleanup_stabilizes_features() {
    // Speckle noise on a voxelization perturbs the cover sequence; the
    // opening + largest-component cleanup restores the original features.
    let solid = CylinderZ { radius: 1.0, half_height: 1.5 };
    let clean = voxelize(&solid, 15);
    let mut noisy = clean.clone();
    noisy.set(0, 0, 0, true);
    noisy.set(14, 14, 14, true);
    noisy.set(0, 14, 0, true);
    let cleaned = vsim_voxel::largest_component(&noisy);
    assert_eq!(cleaned, clean);
    let model = VectorSetModel::new(7);
    assert_eq!(model.extract(&cleaned), model.extract(&clean));
}

#[test]
fn cover_sequences_approximate_objects_well() {
    // On real synthetic parts, 7 covers reduce the symmetric volume
    // difference strongly (the premise of the cover sequence model).
    let data = car_dataset(3, 30);
    for obj in &data.objects {
        let seq = greedy_cover_sequence(&obj.grid15, 7);
        let initial = seq.errors[0];
        let fin = seq.final_error();
        assert!(
            (fin as f64) < 0.45 * initial as f64,
            "object {}: error only dropped {initial} -> {fin}",
            obj.id
        );
        // Error accounting is consistent with an actual reconstruction.
        assert_eq!(fin, obj.grid15.xor_count(&seq.reconstruct()));
    }
}

#[test]
fn scaling_invariance_through_normalization() {
    // The same shape at 10x scale produces identical representations
    // because objects are stored normalized (Sec. 3.2); the scale factors
    // retain the size difference.
    let small = TorusZ { major: 1.0, minor: 0.3 };
    let big = TorusZ { major: 10.0, minor: 3.0 };
    let vs = voxelize_solid(&small, 15, NormalizeMode::Uniform);
    let vb = voxelize_solid(&big, 15, NormalizeMode::Uniform);
    assert_eq!(vs.grid, vb.grid);
    let ratio = vb.scale_factors.x / vs.scale_factors.x;
    assert!((ratio - 10.0).abs() < 1e-9);
}

#[test]
fn vector_set_cardinality_tracks_object_complexity() {
    // A plain box needs 1 cover; a multi-part assembly needs several.
    let box_grid = voxelize(&vsim_geom::solid::Cuboid::new(Vec3::new(1.0, 1.5, 2.0)), 15);
    let complex = vsim_geom::solid::union(vec![
        vsim_geom::solid::Cuboid::new(Vec3::new(2.0, 0.4, 0.4)).boxed(),
        vsim_geom::solid::translated(
            vsim_geom::solid::Cuboid::new(Vec3::new(0.4, 2.0, 0.4)).boxed(),
            Vec3::new(1.6, 2.0, 0.0),
        ),
        vsim_geom::solid::translated(
            vsim_geom::solid::Cuboid::new(Vec3::new(0.4, 0.4, 2.0)).boxed(),
            Vec3::new(-1.6, 0.0, 2.0),
        ),
    ]);
    let complex_grid = voxelize(complex.as_ref(), 15);
    let model = VectorSetModel::new(7);
    let simple_set = model.extract(&box_grid);
    let complex_set = model.extract(&complex_grid);
    assert_eq!(simple_set.len(), 1);
    assert!(complex_set.len() >= 3);
}
