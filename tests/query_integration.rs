//! Cross-crate integration of the query stack on realistic (datagen)
//! vector sets: filter/refine vs. sequential scan vs. M-tree, plus the
//! invariance-aware query pattern of Section 3.2 (48 query permutations
//! at runtime).

use std::sync::Arc;
use vsim_core::prelude::*;
use vsim_features::cover::transform_vector_set;
use vsim_geom::Mat3;

fn aircraft_sets(n: usize, k: usize, seed: u64) -> (Vec<VectorSet>, Vec<usize>) {
    let data = aircraft_dataset(seed, n);
    let labels = data.labels();
    let processed = ProcessedDataset::build(data, k);
    (processed.vector_sets(k), labels)
}

#[test]
fn filter_refine_equals_scan_on_real_data() {
    let (sets, _) = aircraft_sets(300, 7, 9);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let scan = SequentialScanIndex::build(&sets);
    for q in [0usize, 50, 123, 299] {
        let (a, sa) = filter.knn(&sets[q], 10);
        let (b, _) = scan.knn(&sets[q], 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.1 - y.1).abs() < 1e-9, "query {q}");
        }
        assert!(sa.refinements < sets.len(), "filter must prune");
    }
}

#[test]
fn mtree_on_matching_distance_equals_scan() {
    let (sets, _) = aircraft_sets(200, 5, 10);
    let mm = MinimalMatching::vector_set_model();
    let dist: Arc<dyn vsim_setdist::Distance<VectorSet>> = Arc::new(mm.clone());
    let mut mtree: MTree<VectorSet> = MTree::new(dist, 16, 344, IoStats::new());
    for (i, s) in sets.iter().enumerate() {
        mtree.insert(s.clone(), i as u64);
    }
    let scan = SequentialScanIndex::build(&sets);
    for q in [3usize, 77, 150] {
        let got = mtree.knn(&sets[q], 8);
        let (want, _) = scan.knn(&sets[q], 8);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-9, "query {q}: {g:?} vs {w:?}");
        }
    }
    // Metric pruning must beat the trivial bound of evaluating the
    // routing objects of every node plus every leaf entry.
    let before = mtree.distance_computations();
    let _ = mtree.knn(&sets[0], 5);
    let used = mtree.distance_computations() - before;
    assert!((used as usize) < 2 * sets.len());
}

#[test]
fn range_queries_agree_across_paths() {
    let (sets, _) = aircraft_sets(250, 7, 11);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let scan = SequentialScanIndex::build(&sets);
    let mm = MinimalMatching::vector_set_model();
    for q in [5usize, 99] {
        for eps in [0.1, 0.3, 0.8] {
            let (a, _) = filter.range_query(&sets[q], eps);
            let (b, _) = scan.range_query(&sets[q], eps);
            let ids = |v: &[(u64, f64)]| {
                v.iter().map(|(i, _)| *i).collect::<std::collections::BTreeSet<_>>()
            };
            assert_eq!(ids(&a), ids(&b), "eps {eps} query {q}");
            // Every reported distance is correct.
            for (id, d) in &a {
                let exact = mm.distance_value(&sets[q], &sets[*id as usize]);
                assert!((d - exact).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn knn_neighbors_are_mostly_same_family() {
    // Effectiveness smoke test: most of the 5 nearest neighbors of a
    // part belong to its own family.
    let (sets, labels) = aircraft_sets(400, 7, 12);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in (0..400).step_by(23) {
        let (res, _) = filter.knn(&sets[q], 6);
        for (id, _) in res.iter().skip(1) {
            // skip the query itself
            total += 1;
            if labels[*id as usize] == labels[q] {
                hits += 1;
            }
        }
    }
    let frac = hits as f64 / total as f64;
    assert!(frac > 0.6, "only {frac:.2} of neighbors share the query family");
}

#[test]
fn invariant_queries_via_48_runtime_permutations() {
    // Section 3.2: "carrying out 48 different permutations of the query
    // object at runtime". A rotated query still finds its original.
    let (sets, _) = aircraft_sets(150, 7, 13);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let target = 42usize;
    let rot = Mat3::cube_rotations()[9];
    let rotated_query = transform_vector_set(&sets[target], &rot);

    // Without invariance handling, the rotated query may miss.
    // With the 48-permutation merge, the original is the top hit.
    let mut best: Option<(u64, f64)> = None;
    for m in Mat3::cube_symmetries() {
        let tq = transform_vector_set(&rotated_query, &m);
        let (hits, _) = filter.knn(&tq, 1);
        if let Some(h) = hits.first() {
            if best.map_or(true, |b| h.1 < b.1) {
                best = Some(*h);
            }
        }
    }
    let (id, d) = best.unwrap();
    assert_eq!(id, target as u64);
    assert!(d < 1e-9, "rotated query should match its original exactly");
}

#[test]
fn centroid_filter_bound_holds_on_real_data() {
    // Lemma 2 on datagen vector sets: no false dismissals possible.
    let (sets, _) = aircraft_sets(120, 7, 14);
    let mm = MinimalMatching::vector_set_model();
    let omega = vec![0.0; 6];
    for i in (0..sets.len()).step_by(7) {
        let ci = extended_centroid(&sets[i], 7, &omega);
        for j in (0..sets.len()).step_by(11) {
            let cj = extended_centroid(&sets[j], 7, &omega);
            let lb = centroid_lower_bound(&ci, &cj, 7);
            let exact = mm.distance_value(&sets[i], &sets[j]);
            assert!(
                lb <= exact + 1e-9,
                "Lemma 2 violated for ({i},{j}): {lb} > {exact}"
            );
        }
    }
}
