//! Cross-crate integration of the query stack on realistic (datagen)
//! vector sets: filter/refine vs. sequential scan vs. M-tree, plus the
//! invariance-aware query pattern of Section 3.2 (48 query permutations
//! at runtime).

use std::sync::Arc;
use vsim_core::prelude::*;
use vsim_features::cover::transform_vector_set;
use vsim_geom::Mat3;

fn aircraft_sets(n: usize, k: usize, seed: u64) -> (Vec<VectorSet>, Vec<usize>) {
    let data = aircraft_dataset(seed, n);
    let labels = data.labels();
    let processed = ProcessedDataset::build(data, k);
    (processed.vector_sets(k), labels)
}

#[test]
fn filter_refine_equals_scan_on_real_data() {
    let (sets, _) = aircraft_sets(300, 7, 9);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let scan = SequentialScanIndex::build(&sets);
    for q in [0usize, 50, 123, 299] {
        let (a, sa) = filter.knn(&sets[q], 10);
        let (b, _) = scan.knn(&sets[q], 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.1 - y.1).abs() < 1e-9, "query {q}");
        }
        assert!((sa.refinements as usize) < sets.len(), "filter must prune");
    }
}

#[test]
fn mtree_on_matching_distance_equals_scan() {
    let (sets, _) = aircraft_sets(200, 5, 10);
    let mm = MinimalMatching::vector_set_model();
    let dist: Arc<dyn vsim_setdist::Distance<VectorSet>> = Arc::new(mm.clone());
    let mut mtree: MTree<VectorSet> = MTree::new(dist, 16, 344);
    for (i, s) in sets.iter().enumerate() {
        mtree.insert(s.clone(), i as u64);
    }
    let scan = SequentialScanIndex::build(&sets);
    for q in [3usize, 77, 150] {
        let ctx = QueryContext::ephemeral();
        let got = mtree.knn(&sets[q], 8, &ctx);
        let (want, _) = scan.knn(&sets[q], 8);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-9, "query {q}: {g:?} vs {w:?}");
        }
    }
    // Metric pruning must beat the trivial bound of evaluating the
    // routing objects of every node plus every leaf entry.
    let ctx = QueryContext::ephemeral();
    let _ = mtree.knn(&sets[0], 5, &ctx);
    let used = ctx.stats(std::time::Duration::ZERO).distance_evals;
    assert!((used as usize) < 2 * sets.len());
}

#[test]
fn range_queries_agree_across_paths() {
    let (sets, _) = aircraft_sets(250, 7, 11);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let scan = SequentialScanIndex::build(&sets);
    let mm = MinimalMatching::vector_set_model();
    for q in [5usize, 99] {
        for eps in [0.1, 0.3, 0.8] {
            let (a, _) = filter.range_query(&sets[q], eps);
            let (b, _) = scan.range_query(&sets[q], eps);
            let ids = |v: &[(u64, f64)]| {
                v.iter().map(|(i, _)| *i).collect::<std::collections::BTreeSet<_>>()
            };
            assert_eq!(ids(&a), ids(&b), "eps {eps} query {q}");
            // Every reported distance is correct.
            for (id, d) in &a {
                let exact = mm.distance_value(&sets[q], &sets[*id as usize]);
                assert!((d - exact).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn knn_neighbors_are_mostly_same_family() {
    // Effectiveness smoke test: most of the 5 nearest neighbors of a
    // part belong to its own family.
    let (sets, labels) = aircraft_sets(400, 7, 12);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in (0..400).step_by(23) {
        let (res, _) = filter.knn(&sets[q], 6);
        for (id, _) in res.iter().skip(1) {
            // skip the query itself
            total += 1;
            if labels[*id as usize] == labels[q] {
                hits += 1;
            }
        }
    }
    let frac = hits as f64 / total as f64;
    assert!(frac > 0.6, "only {frac:.2} of neighbors share the query family");
}

#[test]
fn invariant_queries_via_48_runtime_permutations() {
    // Section 3.2: "carrying out 48 different permutations of the query
    // object at runtime". A rotated query still finds its original.
    let (sets, _) = aircraft_sets(150, 7, 13);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let target = 42usize;
    let rot = Mat3::cube_rotations()[9];
    let rotated_query = transform_vector_set(&sets[target], &rot);

    // Without invariance handling, the rotated query may miss.
    // With the 48-permutation merge, the original is the top hit.
    let mut best: Option<(u64, f64)> = None;
    for m in Mat3::cube_symmetries() {
        let tq = transform_vector_set(&rotated_query, &m);
        let (hits, _) = filter.knn(&tq, 1);
        if let Some(h) = hits.first() {
            if best.is_none_or(|b| h.1 < b.1) {
                best = Some(*h);
            }
        }
    }
    let (id, d) = best.unwrap();
    assert_eq!(id, target as u64);
    assert!(d < 1e-9, "rotated query should match its original exactly");
}

#[test]
fn batch_executor_is_bit_identical_to_per_query_path() {
    // The parallel executor with cold per-query pools must reproduce the
    // sequential wrappers exactly — hits AND simulated I/O.
    let (sets, _) = aircraft_sets(500, 7, 15);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let queries: Vec<VectorSet> = (0..25).map(|i| sets[i * 19].clone()).collect();
    let batch = QueryExecutor::cold().batch_knn(&filter, &queries, 10);
    for (i, q) in queries.iter().enumerate() {
        let (seq, seq_stats) = filter.knn(q, 10);
        assert_eq!(batch.hits[i], seq, "query {i}: hits must be bit-identical");
        assert_eq!(batch.stats[i].io, seq_stats.io, "query {i}: simulated I/O");
        assert_eq!(batch.stats[i].candidates, seq_stats.candidates);
        assert_eq!(batch.stats[i].refinements, seq_stats.refinements);
    }
    let scan = SequentialScanIndex::build(&sets);
    let sbatch = QueryExecutor::cold().batch_knn(&scan, &queries, 10);
    for (b, s) in sbatch.hits.iter().zip(batch.hits.iter()) {
        for (x, y) in b.iter().zip(s) {
            assert!((x.1 - y.1).abs() < 1e-9);
        }
    }
}

#[test]
fn bounded_refinement_knn_is_bit_identical_to_unbounded_paths() {
    // The bounded matching kernel (k-th-best abort bound) must reproduce
    // both the legacy unbounded refinement and the PR-1 batch executor
    // path exactly — ids, distances (to the bit) and refinement counts —
    // while actually aborting a nonzero share of refinements.
    let (sets, _) = aircraft_sets(400, 7, 18);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let queries: Vec<VectorSet> = (0..20).map(|i| sets[i * 17].clone()).collect();

    let batch = QueryExecutor::cold().batch_knn(&filter, &queries, 10);
    let mut pruned_total = 0u64;
    for (i, q) in queries.iter().enumerate() {
        let (bounded, bs) = filter.knn(q, 10);
        let (naive, ns) = filter.knn_naive(q, 10);
        assert_eq!(bounded, naive, "query {i}: bounded vs naive hits");
        assert_eq!(batch.hits[i], bounded, "query {i}: executor vs bounded hits");
        for (b, n) in bounded.iter().zip(&naive) {
            assert_eq!(b.1.to_bits(), n.1.to_bits(), "query {i}: distance bits");
        }
        // Same candidates examined, same refinements attempted; the
        // bounded path only aborts some of them mid-solve.
        assert_eq!(bs.candidates, ns.candidates, "query {i}");
        assert_eq!(bs.refinements, ns.refinements, "query {i}");
        assert_eq!(ns.pruned, 0, "naive path must never prune");
        assert!(bs.pruned <= bs.refinements);
        pruned_total += bs.pruned;
    }
    assert!(pruned_total > 0, "k-th-best bound never aborted a refinement");
}

#[test]
fn counter_audit_scan_bytes_match_analytic_value() {
    // Table 2 row consistency: the three access paths must account
    // candidates, refinements, pages, and bytes on the same definitions.
    let (sets, _) = aircraft_sets(300, 7, 16);
    let n = sets.len();
    let scan = SequentialScanIndex::build(&sets);
    let filter = FilterRefineIndex::build(&sets, 6, 7);

    // Sequential scan, cold pool: bytes == the packed heap file's exact
    // byte size, pages == ceil(bytes / PAGE_SIZE), one candidate and one
    // refinement per object.
    let (_, ss) = scan.knn(&sets[0], 10);
    let file_bytes: usize = sets.iter().map(|s| s.storage_bytes()).sum();
    let page_size = vsim_index::PAGE_SIZE;
    assert_eq!(ss.io.bytes as usize, file_bytes);
    assert_eq!(ss.io.pages as usize, file_bytes.div_ceil(page_size));
    assert_eq!(ss.candidates, n as u64);
    assert_eq!(ss.refinements, n as u64);
    assert_eq!(ss.cache.hits + ss.cache.misses, ss.cache.accesses());

    // Filter path: every refinement was first a candidate, the filter
    // prunes (refinements < n), and cache counters balance.
    let (_, fs) = filter.knn(&sets[0], 10);
    assert!(fs.refinements <= fs.candidates);
    assert!(fs.refinements < n as u64);
    assert_eq!(fs.cache.hits + fs.cache.misses, fs.cache.accesses());

    // M-tree: pages are charged per node read, so the page count is
    // bounded by the tree's node/page total; distance evaluations are
    // counted on the same tracker.
    let mm = MinimalMatching::vector_set_model();
    let dist: Arc<dyn vsim_setdist::Distance<VectorSet>> = Arc::new(mm);
    let mut mtree: MTree<VectorSet> = MTree::new(dist, 16, 344);
    for (i, s) in sets.iter().enumerate() {
        mtree.insert(s.clone(), i as u64);
    }
    let ctx = QueryContext::ephemeral();
    let _ = mtree.knn(&sets[0], 10, &ctx);
    let ms = ctx.stats(std::time::Duration::ZERO);
    assert!(ms.io.pages > 0);
    assert!(ms.io.pages <= mtree.page_store().page_count());
    assert!(ms.distance_evals > 0);
    assert_eq!(ms.cache.hits + ms.cache.misses, ms.cache.accesses());
}

#[test]
fn knn_results_identical_across_buffer_capacities() {
    // The buffer pool only changes what I/O costs, never what a query
    // returns: capacities 1, 8, and unbounded must give identical hits.
    let (sets, _) = aircraft_sets(250, 7, 17);
    let filter = FilterRefineIndex::build(&sets, 6, 7);
    let scan = SequentialScanIndex::build(&sets);
    let queries: Vec<VectorSet> = (0..10).map(|i| sets[i * 23].clone()).collect();

    let policies =
        [PoolPolicy::PerQuery(Some(1)), PoolPolicy::PerQuery(Some(8)), PoolPolicy::PerQuery(None)];
    let baseline_f = QueryExecutor::new(policies[0].clone()).batch_knn(&filter, &queries, 10);
    let baseline_s = QueryExecutor::new(policies[0].clone()).batch_knn(&scan, &queries, 10);
    for p in &policies[1..] {
        let ex = QueryExecutor::new(p.clone());
        assert_eq!(ex.batch_knn(&filter, &queries, 10).hits, baseline_f.hits, "{p:?}");
        assert_eq!(ex.batch_knn(&scan, &queries, 10).hits, baseline_s.hits, "{p:?}");
    }
    // Tiny pools thrash: capacity 1 must cost at least as many page
    // faults as unbounded on the filter path.
    let unbounded = QueryExecutor::cold().batch_knn(&filter, &queries, 10);
    assert!(baseline_f.aggregate.io.pages >= unbounded.aggregate.io.pages);
}

#[test]
fn centroid_filter_bound_holds_on_real_data() {
    // Lemma 2 on datagen vector sets: no false dismissals possible.
    let (sets, _) = aircraft_sets(120, 7, 14);
    let mm = MinimalMatching::vector_set_model();
    let omega = vec![0.0; 6];
    for i in (0..sets.len()).step_by(7) {
        let ci = extended_centroid(&sets[i], 7, &omega);
        for j in (0..sets.len()).step_by(11) {
            let cj = extended_centroid(&sets[j], 7, &omega);
            let lb = centroid_lower_bound(&ci, &cj, 7);
            let exact = mm.distance_value(&sets[i], &sets[j]);
            assert!(lb <= exact + 1e-9, "Lemma 2 violated for ({i},{j}): {lb} > {exact}");
        }
    }
}
