//! Compare all four similarity models of the paper on one dataset:
//! volume, solid-angle, cover sequence (with and without permutation)
//! and vector set — reporting OPTICS-based cluster quality for each
//! (the quantitative analogue of Figures 6-9).
//!
//! Run with: `cargo run --release --example model_comparison [n_objects]`

use vsim_core::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(120);

    println!("generating {n} synthetic car parts...");
    let data = car_dataset(42, n);
    let labels = data.labels();
    let processed = ProcessedDataset::build(data, 7);

    let models = [
        SimilarityModel::volume(6),
        SimilarityModel::solid_angle(6, 3),
        SimilarityModel::cover_sequence(7),
        SimilarityModel::cover_sequence_permutation(7),
        SimilarityModel::vector_set(7),
        SimilarityModel::vector_set(3),
    ];

    println!(
        "\n{:34} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "model", "clusters", "noise", "purity", "F1", "ARI"
    );
    let optics = Optics { min_pts: 4, eps: f64::INFINITY };
    for model in &models {
        let reprs = processed.representations(model);
        let oracle = processed.distance_oracle(model, &reprs);
        let ordering = optics.run(processed.len(), oracle);
        let q = best_cut(&ordering, &labels, 3, vsim_optics::DEFAULT_GRID);
        println!(
            "{:34} {:>9} {:>7} {:>7.3} {:>7.3} {:>7.3}",
            model.name(),
            q.num_clusters,
            q.noise,
            q.purity,
            q.f1,
            q.ari
        );
    }
    println!(
        "\nexpected ordering (paper, Sec. 5.3): volume < solid-angle < \
         cover-sequence < vector-set; permutation ≈ vector-set; k=3 < k=7."
    );
}
