//! k-NN queries over the Aircraft Dataset, comparing the paper's three
//! access paths (Table 2 setting, at configurable scale):
//!
//! 1. one-vector cover-sequence features in a 42-d X-tree,
//! 2. vector sets with the extended-centroid filter step,
//! 3. vector sets by sequential scan.
//!
//! Run with: `cargo run --release --example aircraft_knn [n_objects]`

use vsim_core::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let k_covers = 7;
    let n_queries = 20;
    let knn = 10;

    println!("generating {n} synthetic aircraft parts...");
    let data = aircraft_dataset(1, n);
    let labels = data.labels();
    let names = data.class_names.clone();
    let processed = ProcessedDataset::build(data, k_covers);

    let sets = processed.vector_sets(k_covers);
    let vectors = processed.cover_vectors(k_covers);

    println!("building indexes...");
    let one_vec = OneVectorIndex::build(&vectors);
    let filter = FilterRefineIndex::build(&sets, 6, k_covers);
    let scan = SequentialScanIndex::build(&sets);
    let (pages, supernodes) = one_vec.index_pages();
    println!("  42-d X-tree: {pages} pages, {supernodes} supernodes");

    let cm = CostModel::default();
    let mut totals = [QueryStats::default(); 3];
    let queries: Vec<usize> = (0..n_queries).map(|i| (i * 37) % n).collect();

    for &q in &queries {
        let (_, s1) = one_vec.knn(&vectors[q], knn);
        let (r2, s2) = filter.knn(&sets[q], knn);
        let (r3, s3) = scan.knn(&sets[q], knn);
        totals[0].accumulate(&s1);
        totals[1].accumulate(&s2);
        totals[2].accumulate(&s3);
        // Filter and scan must agree exactly.
        for (a, b) in r2.iter().zip(&r3) {
            assert!((a.1 - b.1).abs() < 1e-9, "filter/scan disagree");
        }
    }

    println!("\n{n_queries} x {knn}-NN queries (simulated I/O: 8 ms/page + 200 ns/byte):");
    println!(
        "{:22} {:>10} {:>10} {:>10} {:>12}",
        "access path", "CPU s", "I/O s", "total s", "refinements"
    );
    for (name, t) in
        ["1-Vect (X-tree)", "Vect.Set w. filter", "Vect.Set seq.scan"].iter().zip(&totals)
    {
        println!(
            "{:22} {:>10.3} {:>10.3} {:>10.3} {:>12}",
            name,
            t.cpu.as_secs_f64(),
            t.io_seconds(&cm),
            t.total_seconds(&cm),
            t.refinements
        );
    }

    // Show one query's neighbors with their part families.
    let q = queries[0];
    let (hits, _) = filter.knn(&sets[q], knn);
    println!("\nexample: {knn}-NN of object {q} ({}):", names[labels[q]]);
    for (id, d) in hits {
        println!("  {id:5} {:16} d = {d:.4}", names[labels[id as usize]]);
    }
}
