//! Quickstart: voxelize two CAD parts, extract vector sets, compare them
//! with the minimal matching distance, and run a k-NN query.
//!
//! Run with: `cargo run --release --example quickstart`

use vsim_core::prelude::*;
use vsim_geom::solid::{CylinderZ, SolidExt, TorusZ};

fn main() {
    // 1. Model two parts as implicit solids (a tire and a washer-like
    //    disc) and voxelize them at the paper's raster resolution r = 15.
    let tire = TorusZ { major: 2.0, minor: 0.6 }.boxed();
    let fat_tire = TorusZ { major: 2.0, minor: 0.75 }.boxed();
    let disc = vsim_geom::solid::difference(
        CylinderZ { radius: 2.0, half_height: 0.2 }.boxed(),
        CylinderZ { radius: 0.8, half_height: 1.0 }.boxed(),
    );

    let grids: Vec<VoxelGrid> = [&tire, &fat_tire, &disc]
        .iter()
        .map(|s| voxelize_solid(s.as_ref(), 15, NormalizeMode::Uniform).grid)
        .collect();

    // 2. Greedy cover sequences (Jagadish/Bruckstein) -> vector sets.
    let model = VectorSetModel::new(7);
    let sets: Vec<VectorSet> = grids.iter().map(|g| model.extract(g)).collect();
    for (name, s) in ["tire", "fat tire", "disc"].iter().zip(&sets) {
        println!("{name:9} -> {} covers (6-d feature vectors)", s.len());
    }

    // 3. Minimal matching distance (Kuhn-Munkres, O(k^3)).
    let mm = MinimalMatching::vector_set_model();
    let d_tt = mm.distance_value(&sets[0], &sets[1]);
    let d_td = mm.distance_value(&sets[0], &sets[2]);
    println!("\ndist(tire, fat tire) = {d_tt:.4}");
    println!("dist(tire, disc)     = {d_td:.4}");
    assert!(d_tt < d_td, "similar parts must be closer than dissimilar ones");

    // 4. Index a synthetic car dataset and ask for the 5 nearest
    //    neighbors of a tire — the filter step (extended centroids in a
    //    6-d X-tree, Lemma 2 lower bound) prunes most exact evaluations.
    let data = car_dataset(7, 100);
    let labels = data.labels();
    let names = data.class_names.clone();
    let processed = ProcessedDataset::build(data, 7);
    let db_sets = processed.vector_sets(7);
    let index = FilterRefineIndex::build(&db_sets, 6, 7);

    let query_id = labels.iter().position(|&l| names[l] == "tire").unwrap();
    let (hits, stats) = index.knn(&db_sets[query_id], 5);
    println!("\n5-NN of object {query_id} (a {}):", names[labels[query_id]]);
    for (id, d) in &hits {
        println!("  object {id:3} ({:14}) at distance {d:.4}", names[labels[*id as usize]]);
    }
    println!(
        "filter step refined {} of {} objects ({} page accesses simulated)",
        stats.refinements,
        index.len(),
        stats.io.pages
    );
}
