//! The tessellated-CAD path: triangle meshes (the format real CAD
//! exports arrive in) through SAT rasterization + flood fill, feature
//! extraction, and an invariant similarity query — including a query
//! object in a rotated, reflected pose.
//!
//! Run with: `cargo run --release --example mesh_pipeline`

use vsim_core::prelude::*;
use vsim_features::cover::transform_vector_set;
use vsim_geom::{Iso, Mat3, TriMesh, Vec3};

fn main() {
    // 1. Build a small "database" of tessellated parts.
    let mut meshes: Vec<(String, TriMesh)> = Vec::new();
    for i in 0..6 {
        let r = 1.0 + 0.08 * i as f64;
        meshes.push((format!("sphere_{i}"), TriMesh::make_sphere(r, 16, 24)));
    }
    for i in 0..6 {
        let h = 2.0 + 0.3 * i as f64;
        meshes.push((format!("cylinder_{i}"), TriMesh::make_cylinder(0.8, h, 48)));
    }
    for i in 0..6 {
        let w = 1.0 + 0.2 * i as f64;
        meshes.push((
            format!("box_{i}"),
            TriMesh::make_box(Vec3::new(-w, -1.0, -0.4), Vec3::new(w, 1.0, 0.4)),
        ));
    }

    // 2. Voxelize (r = 15, normalized) and extract vector sets.
    let model = VectorSetModel::new(7);
    let sets: Vec<VectorSet> = meshes
        .iter()
        .map(|(_, m)| model.extract(&voxelize_mesh(m, 15, NormalizeMode::Uniform).grid))
        .collect();
    println!("{} meshes voxelized; cover cardinalities:", meshes.len());
    for ((name, _), s) in meshes.iter().zip(&sets) {
        println!("  {name:12} -> {} covers", s.len());
    }

    // 3. Index and query with a *transformed* query mesh: one of the
    //    boxes, rotated by a 90-degree pose and reflected, as a real
    //    retrieval scenario would pose it.
    let index = FilterRefineIndex::build(&sets, 6, 7);
    let target = 14; // box_2
    let mut query_mesh = meshes[target].1.clone();
    let pose = Mat3::cube_rotations()[7] * Mat3::reflect_x();
    query_mesh.transform(&Iso::from_linear(pose));
    let qset = model.extract(&voxelize_mesh(&query_mesh, 15, NormalizeMode::Uniform).grid);

    // Invariant query: 48 runtime permutations (Section 3.2).
    let variants: Vec<VectorSet> =
        Mat3::cube_symmetries().iter().map(|m| transform_vector_set(&qset, m)).collect();
    let (hits, stats) = index.knn_invariant(&variants, 3);
    println!("\ninvariant 3-NN of the rotated+reflected {}:", meshes[target].0);
    for (id, d) in &hits {
        println!("  {:12} d = {d:.4}", meshes[*id as usize].0);
    }
    println!("({} exact evaluations across {} variants)", stats.refinements, variants.len());
    assert_eq!(hits[0].0, target as u64, "the original box must be the top hit");
    assert!(meshes[hits[1].0 as usize].0.starts_with("box"), "runner-up should be another box");
}
