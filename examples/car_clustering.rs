//! OPTICS clustering of the Car Dataset under the vector set model —
//! the paper's Section 5 evaluation methodology, with an ASCII
//! reachability plot (Figure 9(c) analogue) and cluster quality scores
//! against the ground-truth part families.
//!
//! Run with: `cargo run --release --example car_clustering`

use vsim_core::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200);

    println!("generating {n} synthetic car parts...");
    let data = car_dataset(42, n);
    let labels = data.labels();
    let class_names = data.class_names.clone();
    let hist = data.class_histogram();
    for (name, count) in class_names.iter().zip(&hist) {
        println!("  {name:14} x{count}");
    }

    println!("\ncomputing greedy cover sequences (k = 7)...");
    let processed = ProcessedDataset::build(data, 7);
    let model = SimilarityModel::vector_set(7);
    let reprs = processed.representations(&model);

    println!("running OPTICS (MinPts = 5)...");
    let optics = Optics { min_pts: 5, eps: f64::INFINITY };
    let oracle = processed.distance_oracle(&model, &reprs);
    let ordering = optics.run(processed.len(), oracle);

    let plot = ReachabilityPlot::from_ordering(&ordering);
    println!("\nreachability plot ({} objects, valleys = clusters):", plot.len());
    print!("{}", plot.ascii(100, 12));

    // Score the best epsilon-cut against the ground-truth families.
    let q = best_cut(&ordering, &labels, 4, vsim_optics::DEFAULT_GRID);
    println!(
        "\nbest cut: eps = {:.3} -> {} clusters, {} noise objects",
        q.eps, q.num_clusters, q.noise
    );
    println!(
        "cluster quality vs ground truth: purity = {:.3}, pairwise F1 = {:.3}, ARI = {:.3}",
        q.purity, q.f1, q.ari
    );

    // Show the majority family of each extracted cluster.
    let clustering = extract_clusters(&ordering, q.eps, 4);
    println!("\nclusters found:");
    for (ci, members) in clustering.clusters.iter().enumerate() {
        let mut counts = vec![0usize; class_names.len()];
        for &m in members {
            counts[labels[m]] += 1;
        }
        let (best_label, best_count) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        println!(
            "  cluster {ci:2}: {:3} objects, {:3}% {}",
            members.len(),
            100 * best_count / members.len(),
            class_names[best_label]
        );
    }
}
